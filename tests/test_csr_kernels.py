"""CSR snapshot + kernel equivalence tests.

The contract of :mod:`repro.graph.csr` / :mod:`repro.paths.kernels` is exact
behavioural equivalence with the dict-based reference path (``ExclusionView``
+ the view implementations in :mod:`repro.paths`): same distances, same
witness paths, same dict insertion order, and therefore byte-identical
spanners.  These tests drive that contract property-style on random graphs
with random fault masks, and also exercise the snapshot lifecycle
(version-keyed caching, incremental append, overflow compaction).
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.core import Graph, edge_key
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.views import ExclusionView
from repro.paths.bfs import _bfs_core
from repro.paths.kernels import (
    bfs_distances_csr,
    bounded_bfs_csr,
    bounded_dijkstra_csr,
    bounded_dijkstra_path_csr,
    sssp_dijkstra_csr,
)
from repro.spanners.fault_check import (
    BranchAndBoundOracle,
    ExhaustiveOracle,
    GreedyPathPackingOracle,
)
from repro.utils.rng import RandomSource

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------
# Reference implementations (dict/view path, pre-CSR semantics)
# --------------------------------------------------------------------------

def _ref_bounded_distance(graph, source, target, budget):
    """The seed ``bounded_distance`` (dispatch-free, works on views)."""
    from heapq import heappop, heappush
    from itertools import count
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf
    if source == target:
        return 0.0
    visited = set()
    tiebreak = count()
    heap = [(0.0, next(tiebreak), source)]
    while heap:
        dist, _, node = heappop(heap)
        if node in visited:
            continue
        if dist > budget:
            return math.inf
        if node == target:
            return dist
        visited.add(node)
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in visited:
                continue
            candidate = dist + weight
            if candidate <= budget:
                heappush(heap, (candidate, next(tiebreak), neighbor))
    return math.inf


def _ref_bounded_path(graph, source, target, budget):
    """The seed ``bounded_path`` (dispatch-free, works on views)."""
    from heapq import heappop, heappush
    from itertools import count
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf, []
    if source == target:
        return 0.0, [source]
    visited = set()
    parents = {}
    tiebreak = count()
    heap = [(0.0, next(tiebreak), source, None)]
    while heap:
        dist, _, node, parent = heappop(heap)
        if node in visited:
            continue
        if dist > budget:
            return math.inf, []
        if parent is not None:
            parents[node] = parent
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            path.reverse()
            return dist, path
        visited.add(node)
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in visited:
                continue
            candidate = dist + weight
            if candidate <= budget:
                heappush(heap, (candidate, next(tiebreak), neighbor, node))
    return math.inf, []


def _ref_dijkstra_distances(graph, source, cutoff=None):
    """The seed ``dijkstra_distances`` (dispatch-free, works on views)."""
    from heapq import heappop, heappush
    from itertools import count
    distances = {}
    tiebreak = count()
    heap = [(0.0, next(tiebreak), source)]
    while heap:
        dist, _, node = heappop(heap)
        if node in distances:
            continue
        if cutoff is not None and dist > cutoff:
            continue
        distances[node] = dist
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in distances:
                continue
            candidate = dist + weight
            if cutoff is not None and candidate > cutoff:
                continue
            heappush(heap, (candidate, next(tiebreak), neighbor))
    return distances


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

@st.composite
def masked_instances(draw, max_nodes=10, weighted=True):
    """A random graph plus a random vertex fault set and edge fault set."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = RandomSource(seed)
    graph = Graph(nodes=range(n))
    order = list(range(n))
    rng.shuffle(order)
    for index in range(1, n):
        anchor = order[rng.randint(0, index - 1)]
        weight = rng.uniform(1.0, 5.0) if weighted else 1.0
        graph.add_edge(order[index], anchor, weight)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.bernoulli(density):
                weight = rng.uniform(1.0, 5.0) if weighted else 1.0
                graph.add_edge(u, v, weight)
    num_vertex_faults = draw(st.integers(min_value=0, max_value=max(0, n - 2)))
    vertex_faults = [order[i] for i in range(num_vertex_faults)]
    edges = list(graph.edge_keys())
    num_edge_faults = draw(st.integers(min_value=0, max_value=min(4, len(edges))))
    edge_faults = edges[:num_edge_faults]
    source = draw(st.integers(min_value=0, max_value=n - 1))
    target = draw(st.integers(min_value=0, max_value=n - 1))
    budget = draw(st.floats(min_value=0.5, max_value=12.0))
    return graph, vertex_faults, edge_faults, source, target, budget


# --------------------------------------------------------------------------
# Kernel vs reference equivalence under random fault masks
# --------------------------------------------------------------------------

@SETTINGS
@given(masked_instances())
def test_bounded_dijkstra_csr_matches_view_reference(instance):
    graph, vertex_faults, edge_faults, source, target, budget = instance
    view = ExclusionView(graph, excluded_nodes=vertex_faults,
                         excluded_edges=edge_faults)
    expected = _ref_bounded_distance(view, source, target, budget)
    csr = csr_snapshot(graph)
    got = bounded_dijkstra_csr(
        csr, csr.index_of[source], csr.index_of[target], budget,
        csr.vertex_fault_mask(vertex_faults),
        csr.edge_fault_mask(edge_faults),
    )
    assert got == expected


@SETTINGS
@given(masked_instances())
def test_bounded_dijkstra_path_csr_matches_view_reference(instance):
    graph, vertex_faults, edge_faults, source, target, budget = instance
    view = ExclusionView(graph, excluded_nodes=vertex_faults,
                         excluded_edges=edge_faults)
    expected_dist, expected_path = _ref_bounded_path(view, source, target, budget)
    csr = csr_snapshot(graph)
    got_dist, index_path = bounded_dijkstra_path_csr(
        csr, csr.index_of[source], csr.index_of[target], budget,
        csr.vertex_fault_mask(vertex_faults),
        csr.edge_fault_mask(edge_faults),
    )
    assert got_dist == expected_dist
    # The witness path must match node-for-node: the oracles branch on its
    # elements, so any deviation would change spanner outputs.
    assert [csr.node_of[i] for i in index_path] == expected_path


@SETTINGS
@given(masked_instances())
def test_sssp_csr_matches_view_reference_including_order(instance):
    graph, vertex_faults, edge_faults, source, _, _ = instance
    if source in vertex_faults:
        return
    view = ExclusionView(graph, excluded_nodes=vertex_faults,
                         excluded_edges=edge_faults)
    expected = _ref_dijkstra_distances(view, source)
    csr = csr_snapshot(graph)
    dist, order = sssp_dijkstra_csr(
        csr, csr.index_of[source], None,
        csr.vertex_fault_mask(vertex_faults),
        csr.edge_fault_mask(edge_faults),
    )
    got = {csr.node_of[i]: dist[i] for i in order}
    assert got == expected
    # Settle order (== reference dict insertion order) must match too.
    assert list(got) == list(expected)


@SETTINGS
@given(masked_instances(weighted=False))
def test_bfs_kernels_match_view_reference(instance):
    graph, vertex_faults, edge_faults, source, target, _ = instance
    view = ExclusionView(graph, excluded_nodes=vertex_faults,
                         excluded_edges=edge_faults)
    csr = csr_snapshot(graph)
    vmask = csr.vertex_fault_mask(vertex_faults)
    emask = csr.edge_fault_mask(edge_faults)
    for max_hops in (None, 2):
        if source not in vertex_faults:
            expected, _ = _bfs_core(view, source, max_hops)
            dist, order = bfs_distances_csr(csr, csr.index_of[source], max_hops,
                                            vmask, emask)
            got = {csr.node_of[i]: dist[i] for i in order}
            assert got == expected
        if view.has_node(source) and view.has_node(target):
            if source == target:
                expected_hop = 0.0
            else:
                _, found = _bfs_core(view, source, max_hops, target=target)
                expected_hop = float(found) if found is not None else math.inf
            got_hop = bounded_bfs_csr(csr, csr.index_of[source],
                                      csr.index_of[target], max_hops,
                                      vmask, emask)
            assert got_hop == expected_hop


# --------------------------------------------------------------------------
# Oracles: CSR mask path vs view fallback path
# --------------------------------------------------------------------------

@SETTINGS
@given(masked_instances(max_nodes=8),
       st.integers(min_value=0, max_value=2),
       st.sampled_from(["vertex", "edge"]),
       st.sampled_from([ExhaustiveOracle, BranchAndBoundOracle,
                        GreedyPathPackingOracle]))
def test_oracles_agree_between_csr_and_view_paths(instance, faults, model, oracle_cls):
    graph, _, _, source, target, budget = instance
    if source == target:
        return
    if oracle_cls is ExhaustiveOracle and faults > 1:
        faults = 1  # keep the ground-truth oracle affordable
    csr_result = oracle_cls().find_breaking_fault_set(
        graph, source, target, budget, faults, model)
    # An exclusion-free view forces the legacy view-based implementation.
    view_result = oracle_cls().find_breaking_fault_set(
        ExclusionView(graph), source, target, budget, faults, model)
    assert csr_result == view_result


# --------------------------------------------------------------------------
# Snapshot lifecycle: interning, incremental append, compaction, caching
# --------------------------------------------------------------------------

def test_incremental_append_matches_from_graph():
    rng = RandomSource(7)
    graph = Graph(nodes=range(30))
    incremental = csr_snapshot(graph)  # compiled while empty, then appended to
    edges = []
    for u in range(30):
        for v in range(u + 1, 30):
            if rng.bernoulli(0.4):
                edges.append((u, v, rng.uniform(1.0, 4.0)))
    for u, v, w in edges:
        graph.add_edge(u, v, w)
    assert csr_snapshot(graph) is incremental  # kept in sync, never recompiled
    fresh = CSRGraph.from_graph(graph)
    assert incremental.node_of == fresh.node_of
    assert incremental.edge_index == fresh.edge_index
    for source in range(0, 30, 7):
        for target in range(1, 30, 5):
            a = bounded_dijkstra_csr(incremental, source, target, 9.0)
            b = bounded_dijkstra_csr(fresh, source, target, 9.0)
            assert a == b
    # Folding the overflow must not change the arc order the kernels see.
    incremental.compact()
    assert incremental.indices == fresh.indices
    assert incremental.weights == fresh.weights
    assert incremental.edge_ids == fresh.edge_ids
    assert incremental.indptr == fresh.indptr


def test_snapshot_cache_keyed_on_version():
    graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
    first = csr_snapshot(graph)
    assert csr_snapshot(graph) is first  # unchanged graph: cache hit
    version = graph.version
    graph.add_edge(0, 3)
    assert graph.version > version
    snap = csr_snapshot(graph)
    assert snap is first  # appends keep the snapshot live...
    assert snap.edge_id(0, 3) is not None
    graph.remove_edge(0, 3)
    rebuilt = csr_snapshot(graph)
    assert rebuilt is not first  # ...removals force a recompile
    assert rebuilt.edge_id(0, 3) is None
    # Weight overwrites also invalidate (CSR weights are baked in).
    graph.add_edge(0, 1, 5.0)
    assert csr_snapshot(graph).weights[0] == 5.0


def test_graph_version_bumps_on_every_mutation():
    graph = Graph()
    before = graph.version
    graph.add_node("a")
    assert graph.version > before
    before = graph.version
    graph.add_node("a")  # idempotent re-add: no structural change
    assert graph.version == before
    graph.add_edge("a", "b")
    assert graph.version > before
    before = graph.version
    graph.add_edge("a", "b", 2.0)  # weight overwrite is a mutation
    assert graph.version > before
    before = graph.version
    graph.remove_edge("a", "b")
    assert graph.version > before
    before = graph.version
    graph.remove_node("b")
    assert graph.version > before


def test_edge_ids_are_stable_across_compaction():
    graph = Graph(nodes=range(10))
    snap = csr_snapshot(graph)
    ids = {}
    rng = RandomSource(3)
    for u in range(10):
        for v in range(u + 1, 10):
            if rng.bernoulli(0.8):
                graph.add_edge(u, v)
                ids[edge_key(u, v)] = snap.edge_id(u, v)
    snap.compact()
    for (u, v), eid in ids.items():
        assert snap.edge_id(u, v) == eid


# --------------------------------------------------------------------------
# Interleaved add/remove: version-bump and cache-staleness audit
# --------------------------------------------------------------------------
# Removals drop the cached snapshot outright (no in-place patching), so the
# hazard to guard is *aliasing*: a remove -> add round trip of the same edge
# key must never leave any version-keyed consumer able to mistake the new
# structure for the old one.

def test_remove_then_readd_same_edge_key_recompiles_fresh():
    """Regression: snapshot staleness after remove -> add of one edge key."""
    graph = Graph(edges=[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 2.0)])
    stale = csr_snapshot(graph)
    stale_version = stale.graph_version
    old_eid = stale.edge_id(0, 1)
    graph.remove_edge(0, 1)
    graph.add_edge(0, 1, 7.5)  # same key, different weight
    # The version counter is monotone: the round trip can never re-reach the
    # version the stale snapshot was compiled at, so version-keyed caches
    # (csr_snapshot itself, the engine's result cache) cannot alias it.
    assert graph.version > stale_version
    assert stale.graph_version == stale_version  # untouched, held by us only
    rebuilt = csr_snapshot(graph)
    assert rebuilt is not stale
    assert rebuilt.graph_version == graph.version
    # The recompiled snapshot serves the *new* weight on every arc of {0,1}.
    eid = rebuilt.edge_id(0, 1)
    assert eid is not None
    arc_weights = [w for index in (0, 1)
                   for _, w, e in rebuilt.arcs(index) if e == eid]
    assert arc_weights == [7.5, 7.5]
    # ... while the stale object still carries the old one (proving a holder
    # of the old snapshot would have been wrong — which is exactly why the
    # cache key must move).
    stale_weights = [w for index in (0, 1)
                     for _, w, e in stale.arcs(index) if e == old_eid]
    assert stale_weights == [1.0, 1.0]
    assert bounded_dijkstra_csr(rebuilt, 0, 1, 10.0) == 2.0  # via 2, not 7.5


def test_remove_then_readd_under_live_incremental_snapshot():
    """The round trip also invalidates snapshots holding overflow appends."""
    graph = Graph(edges=[(0, 1), (1, 2)])
    snap = csr_snapshot(graph)
    graph.add_edge(2, 3)       # lands in the live snapshot's overflow
    assert csr_snapshot(graph) is snap
    graph.remove_edge(2, 3)    # removal of an overflow arc drops the cache
    assert csr_snapshot(graph) is not snap
    graph.add_edge(2, 3, 4.0)  # same key back, new weight
    rebuilt = csr_snapshot(graph)
    assert rebuilt.edge_id(2, 3) is not None
    assert [w for _, w, _ in rebuilt.arcs(rebuilt.index_of[3])] == [4.0]


def test_remove_node_then_readd_reindexes_consistently():
    """remove_node -> re-add of the node and its edges recompiles cleanly."""
    graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (1, 3)])
    csr_snapshot(graph)
    graph.remove_node(1)
    assert graph._csr_cache is None  # removal dropped the live snapshot
    graph.add_edge(1, 0, 2.0)  # node 1 returns with a different neighbourhood
    rebuilt = csr_snapshot(graph)
    # Node 1 re-interned at the *end* of insertion order now.
    assert rebuilt.node_of.index(1) == len(rebuilt.node_of) - 1
    assert rebuilt.edge_id(0, 1) is not None
    assert rebuilt.edge_id(1, 2) is None
    assert rebuilt.edge_id(1, 3) is None


def test_interleaved_add_remove_matches_fresh_compile():
    """Property-style audit: any interleaving ends bit-identical to a fresh compile."""
    rng = RandomSource(2026)
    graph = Graph(nodes=range(12))
    alive = {}
    for step in range(300):
        u, v = rng.sample(range(12), 2)
        key = edge_key(u, v)
        if key in alive and rng.bernoulli(0.45):
            graph.remove_edge(u, v)
            del alive[key]
        elif key in alive and rng.bernoulli(0.3):
            weight = rng.uniform(0.5, 3.0)
            graph.add_edge(u, v, weight)  # overwrite (drops the cache)
            alive[key] = weight
        elif key not in alive:
            weight = rng.uniform(0.5, 3.0)
            graph.add_edge(u, v, weight)
            alive[key] = weight
        if step % 23 == 0:
            snap = csr_snapshot(graph)  # sometimes keep a live snapshot warm
            assert snap.graph_version == graph.version
    snap = csr_snapshot(graph)
    fresh = CSRGraph.from_graph(graph)
    assert snap.node_of == fresh.node_of
    assert snap.edge_index == fresh.edge_index
    assert snap.num_edges == len(alive) == graph.number_of_edges()
    snap.compact()
    assert snap.indptr == fresh.indptr
    assert snap.indices == fresh.indices
    assert snap.weights == fresh.weights
    assert snap.edge_ids == fresh.edge_ids
