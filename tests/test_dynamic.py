"""Tests for the dynamic update subsystem (:mod:`repro.dynamic`).

The contract under test, in increasing order of integration:

* update ops validate and apply exactly as written; journals JSON-round-trip
  and replay **deterministically** (same base + same journal → structurally
  identical graphs with identical insertion order);
* the dirty-region filter is sound: repairing only the filtered candidates
  ends in exactly the spanner that re-sweeping *every* rejected edge would
  produce;
* after any stream of mixed updates the maintained spanner still passes
  ``is_ft_spanner`` — exhaustively on small instances, for both fault
  models — and sharded repair/re-certification is byte-identical to serial;
* :class:`LiveEngine` serves answers identical to the dict-reference
  Dijkstra over the current spanner, keeps its cache across updates that
  leave the spanner untouched, and invalidates it the moment the spanner
  moves;
* the acceptance anchor: a ≥200-update journal on a 100+-node graph, both
  fault models, certified by sampling, with the size-vs-rebuild factor
  bounded.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.build import BuildError, BuildSession, BuildSpec, build
from repro.dynamic import (
    DynamicSpanner,
    EdgeDelete,
    EdgeInsert,
    LiveEngine,
    UpdateError,
    UpdateJournal,
    WeightChange,
    all_rejected_candidates,
    dirty_candidates,
    random_journal,
    update_from_json,
    update_to_json,
)
from repro.engine.workload import Query, update_churn
from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.views import graph_minus
from repro.paths.dijkstra import dijkstra_distances
from repro.spanners.verify import is_ft_spanner

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _spec(**overrides) -> BuildSpec:
    defaults = dict(algorithm="ft-greedy", stretch=3, max_faults=1)
    defaults.update(overrides)
    return BuildSpec(**defaults)


# --------------------------------------------------------------------------
# Update ops
# --------------------------------------------------------------------------

class TestUpdateOps:
    def test_insert_applies_and_validates(self):
        graph = Graph(edges=[(0, 1)])
        EdgeInsert(1, 2, 2.5).apply(graph)
        assert graph.weight(1, 2) == 2.5
        with pytest.raises(UpdateError):
            EdgeInsert(0, 1).apply(graph)  # exists: use WeightChange
        with pytest.raises(UpdateError):
            EdgeInsert(3, 3).apply(graph)  # self loop
        with pytest.raises(UpdateError):
            EdgeInsert(4, 5, -1.0).apply(graph)  # non-positive weight

    def test_delete_applies_and_validates(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        EdgeDelete(1, 0).apply(graph)  # orientation-insensitive
        assert not graph.has_edge(0, 1)
        assert graph.has_node(0)  # endpoints stay
        with pytest.raises(UpdateError):
            EdgeDelete(0, 1).apply(graph)

    def test_reweight_applies_and_validates(self):
        graph = Graph(edges=[(0, 1, 1.0)])
        WeightChange(0, 1, 4.0).apply(graph)
        assert graph.weight(0, 1) == 4.0
        with pytest.raises(UpdateError):
            WeightChange(1, 2, 1.0).apply(graph)  # missing: use EdgeInsert
        with pytest.raises(UpdateError):
            WeightChange(0, 1, 0.0).apply(graph)

    def test_json_round_trip_covers_every_kind_and_tuple_nodes(self):
        ops = [EdgeInsert(0, 1, 1.5), EdgeDelete("a", "b"),
               WeightChange(("p", 2), ("p", 3), 0.25)]
        for op in ops:
            document = update_to_json(op)
            assert update_from_json(document) == op
        with pytest.raises(UpdateError):
            update_from_json({"op": "merge", "u": 0, "v": 1})


# --------------------------------------------------------------------------
# The journal
# --------------------------------------------------------------------------

class TestUpdateJournal:
    def test_append_only_and_counts(self):
        journal = UpdateJournal()
        journal.append(EdgeInsert(0, 1))
        journal.extend([EdgeDelete(0, 1), WeightChange(2, 3, 1.0)])
        assert len(journal) == 3
        assert journal.counts() == {"insert": 1, "delete": 1, "reweight": 1}
        with pytest.raises(UpdateError):
            journal.append(("not", "an", "op"))

    def test_replay_copies_by_default_and_mutates_in_place_on_request(self):
        base = Graph(edges=[(0, 1), (1, 2)])
        journal = UpdateJournal([EdgeDelete(0, 1), EdgeInsert(0, 2, 2.0)])
        final = journal.replay(base)
        assert base.has_edge(0, 1)  # base untouched
        assert not final.has_edge(0, 1) and final.weight(0, 2) == 2.0
        same = journal.replay(base, in_place=True)
        assert same is base and not base.has_edge(0, 1)

    def test_save_load_round_trip(self, tmp_path):
        journal = UpdateJournal([EdgeInsert(0, 1, 1.5), EdgeDelete(0, 1)],
                                name="churn")
        path = tmp_path / "journal.json"
        journal.save(path)
        loaded = UpdateJournal.load(path)
        assert list(loaded) == list(journal)
        assert loaded.name == "churn"

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_replay_is_deterministic(self, seed):
        """Same base + same journal → identical structure AND insertion order."""
        base = generators.gnm(12, 26, rng=3, connected=True, weighted=True)
        journal = random_journal(base, 25, rng=seed)
        first = journal.replay(base)
        second = journal.replay(base)
        assert first.same_structure(second)
        assert list(first.nodes()) == list(second.nodes())
        assert list(first.edges()) == list(second.edges())
        # The JSON round trip replays to the same graph too.
        third = UpdateJournal.from_json(journal.to_json()).replay(base)
        assert list(third.edges()) == list(first.edges())

    def test_random_journal_is_seeded_and_valid(self):
        base = generators.gnm(10, 18, rng=1, connected=True)
        a = random_journal(base, 40, rng=11)
        b = random_journal(base, 40, rng=11)
        assert list(a) == list(b)
        assert len(a) == 40
        journal_counts = a.counts()
        assert sum(journal_counts.values()) == 40
        a.replay(base)  # every op applies cleanly


# --------------------------------------------------------------------------
# Dirty-region soundness
# --------------------------------------------------------------------------

class TestDirtyRegion:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_filtered_repair_equals_full_resweep(self, fault_model):
        """Soundness: repairing only the dirty region ends in exactly the
        spanner a sweep over *every* rejected edge would produce."""
        graph = generators.gnm(18, 60, rng=4, connected=True, weighted=True)
        spec = _spec(fault_model=fault_model)
        for drop in range(3):  # delete a few different spanner edges
            filtered = DynamicSpanner(graph.copy(), spec)
            spanner_edges = sorted(filtered.spanner.edge_keys(), key=repr)
            u, v = spanner_edges[(7 * drop) % len(spanner_edges)]
            # The unfiltered reference: same state, but sweep everything.
            unfiltered = DynamicSpanner(graph.copy(), spec)
            candidates, pool = dirty_candidates(
                unfiltered.graph, unfiltered.spanner, (u, v), spec.stretch)
            assert len(candidates) <= pool
            unfiltered.graph.remove_edge(u, v)
            unfiltered.spanner.remove_edge(u, v)
            everything = all_rejected_candidates(unfiltered.graph,
                                                 unfiltered.spanner)
            readded_full = unfiltered._sweep_serial(everything)
            outcome = filtered.apply(EdgeDelete(u, v))
            assert filtered.spanner.same_structure(unfiltered.spanner), (
                f"dirty filter changed the repair outcome for {(u, v)}")
            assert set(outcome.repair_added) == set(readded_full)

    def test_dirty_candidates_requires_spanner_edge(self):
        graph = generators.gnm(10, 20, rng=0, connected=True)
        dyn = DynamicSpanner(graph, _spec())
        rejected = all_rejected_candidates(dyn.graph, dyn.spanner)
        if rejected:
            u, v, _ = rejected[0]
            with pytest.raises(ValueError):
                dirty_candidates(dyn.graph, dyn.spanner, (u, v), 3.0)


# --------------------------------------------------------------------------
# DynamicSpanner maintenance
# --------------------------------------------------------------------------

class TestDynamicSpanner:
    def test_rejects_non_greedy_specs_and_heuristic_oracles(self):
        graph = generators.gnm(8, 14, rng=0, connected=True)
        with pytest.raises(BuildError):
            DynamicSpanner(graph, BuildSpec("trivial", stretch=3, max_faults=1))
        with pytest.raises(BuildError):
            DynamicSpanner(graph, _spec(oracle="greedy-path-packing"))

    def test_invalid_ops_raise_update_error_and_change_nothing(self):
        graph = generators.gnm(10, 20, rng=2, connected=True, weighted=True)
        dyn = DynamicSpanner(graph, _spec())
        graph_version = dyn.graph.version
        spanner_version = dyn.spanner.version
        missing = ("zz1", "zz2")
        # Every invalid kind surfaces as UpdateError (never a raw
        # GraphError), with graph, spanner, and journal untouched.
        with pytest.raises(UpdateError):
            dyn.apply(WeightChange(*missing, 1.5))
        with pytest.raises(UpdateError):
            dyn.apply(EdgeDelete(*missing))
        existing = next(iter(dyn.graph.edge_keys()))
        with pytest.raises(UpdateError):
            dyn.apply(EdgeInsert(*existing, 1.0))
        assert dyn.graph.version == graph_version
        assert dyn.spanner.version == spanner_version
        assert dyn.updates_applied == 0 and len(dyn.journal) == 0

    def test_insert_of_bridge_to_new_node_is_accepted(self):
        graph = generators.gnm(10, 20, rng=2, connected=True)
        dyn = DynamicSpanner(graph, _spec())
        outcome = dyn.apply(EdgeInsert("new", 0, 1.0))
        assert outcome.accepted is True
        assert dyn.spanner.has_edge("new", 0)
        assert dyn.spanner.has_node("new")

    def test_insert_of_redundant_heavy_edge_is_rejected(self):
        # A heavy chord across a dense cluster: H already provides many
        # disjoint short detours, so no single fault can break the pair.
        graph = generators.complete_graph(8)
        dyn = DynamicSpanner(graph.copy(), _spec(stretch=3))
        deleted = dyn.apply(EdgeDelete(0, 1))
        assert deleted.spanner_changed  # complete graphs keep every edge
        outcome = dyn.apply(EdgeInsert(0, 1, 3.0))
        assert outcome.accepted is False  # dist_{H\F}(0,1) = 2 <= 3*3 always
        assert not dyn.spanner.has_edge(0, 1)

    def test_delete_of_rejected_edge_is_free(self):
        graph = generators.gnm(16, 48, rng=5, connected=True, weighted=True)
        dyn = DynamicSpanner(graph, _spec())
        rejected = all_rejected_candidates(dyn.graph, dyn.spanner)
        assert rejected, "fixture should reject some edges"
        u, v, _ = rejected[0]
        spanner_version = dyn.spanner.version
        outcome = dyn.apply(EdgeDelete(u, v))
        assert outcome.region is None and not outcome.spanner_changed
        assert dyn.spanner.version == spanner_version
        assert dyn.repairs == 0

    def test_reweight_cases(self):
        graph = generators.gnm(14, 40, rng=6, connected=True, weighted=True)
        dyn = DynamicSpanner(graph, _spec())
        spanner_edge = next(iter(sorted(dyn.spanner.edge_keys(), key=repr)))
        u, v = spanner_edge
        weight = dyn.spanner.weight(u, v)
        # Decrease of a spanner edge: provably free, weights mirrored.
        outcome = dyn.apply(WeightChange(u, v, weight / 2))
        assert outcome.region is None
        assert dyn.spanner.weight(u, v) == weight / 2
        assert dyn.graph.weight(u, v) == weight / 2
        # Increase of a spanner edge: opens a region, stays in H.
        outcome = dyn.apply(WeightChange(u, v, weight * 4))
        assert outcome.region is not None and outcome.region.reason == "reweight"
        assert dyn.spanner.weight(u, v) == weight * 4
        rejected = all_rejected_candidates(dyn.graph, dyn.spanner)
        if rejected:
            a, b, w = rejected[0]
            # Increase of a rejected edge: free.
            outcome = dyn.apply(WeightChange(a, b, w * 2))
            assert outcome.accepted is None and outcome.region is None
            # Steep decrease of a rejected edge: re-tested (and a near-zero
            # weight makes every detour too long, so it re-enters H).
            outcome = dyn.apply(WeightChange(a, b, w / 1000))
            assert outcome.accepted is True
            assert dyn.spanner.has_edge(a, b)

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_maintained_spanner_stays_ft_exhaustively(self, fault_model):
        """After N mixed updates the invariant holds — checked exhaustively."""
        graph = generators.gnm(12, 30, rng=8, connected=True, weighted=True)
        spec = _spec(fault_model=fault_model)
        dyn = DynamicSpanner(graph, spec)
        journal = random_journal(graph, 40, rng=13)
        dyn.apply_journal(journal)
        report = is_ft_spanner(dyn.graph, dyn.spanner, spec.stretch,
                               spec.max_faults, fault_model,
                               method="exhaustive")
        assert report.exhaustive and report.ok, report.notes
        # And the built-in certifier agrees (same machinery, recorded).
        record = dyn.certify(method="exhaustive")
        assert record.ok and dyn.certifications[-1] is record

    def test_maintenance_is_deterministic_and_journaled(self):
        graph = generators.gnm(14, 36, rng=9, connected=True, weighted=True)
        base = graph.copy()
        journal = random_journal(graph, 30, rng=21)
        first = DynamicSpanner(graph, _spec())
        first.apply_journal(journal)
        second = DynamicSpanner(base.copy(), _spec())
        second.apply_journal(journal)
        assert first.spanner.same_structure(second.spanner)
        assert first.witnesses == second.witnesses
        # The applied-updates journal reproduces the live graph from base.
        replayed = first.journal.replay(base)
        assert replayed.same_structure(first.graph)

    def test_adopting_a_foreign_result_is_rejected(self):
        graph = generators.gnm(10, 20, rng=3, connected=True)
        other = generators.gnm(10, 24, rng=4, connected=True)
        result = build(other, _spec())
        with pytest.raises(BuildError):
            DynamicSpanner(graph, _spec(), result=result)

    def test_from_snapshot_requires_original_and_spec(self):
        graph = generators.gnm(10, 22, rng=5, connected=True)
        session = BuildSession(graph, _spec())
        snapshot = session.snapshot(keep_original=False)
        with pytest.raises(BuildError):
            DynamicSpanner.from_snapshot(snapshot)
        full = session.snapshot(keep_original=True)
        full.metadata.pop("build_spec")
        with pytest.raises(BuildError):
            DynamicSpanner.from_snapshot(full)
        dyn = DynamicSpanner.from_snapshot(full, spec=_spec())
        assert dyn.certify(method="exhaustive").ok

    def test_build_session_dynamic_entry_point(self):
        graph = generators.gnm(12, 28, rng=6, connected=True, weighted=True)
        session = BuildSession(graph, _spec())
        dyn = session.dynamic()
        assert dyn.spanner is session.result.spanner  # adopts, not rebuilds
        assert dyn.witnesses == session.result.witness_fault_sets
        dyn.apply(EdgeDelete(*next(iter(sorted(dyn.spanner.edge_keys(),
                                               key=repr)))))
        assert dyn.certify(method="exhaustive").ok


# --------------------------------------------------------------------------
# Serial == sharded (repair sweeps and re-certification)
# --------------------------------------------------------------------------

class TestShardedMaintenance:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_sharded_repair_is_byte_identical_to_serial(self, fault_model):
        graph = generators.gnm(20, 64, rng=10, connected=True, weighted=True)
        journal = random_journal(graph, 30, rng=17)
        serial = DynamicSpanner(graph.copy(), _spec(fault_model=fault_model))
        serial.apply_journal(journal)
        sharded = DynamicSpanner(
            graph.copy(),
            _spec(fault_model=fault_model, workers=2, backend="process"))
        sharded.apply_journal(journal)
        assert sharded.spanner.same_structure(serial.spanner)
        assert list(sharded.spanner.edges()) == list(serial.spanner.edges())
        assert sharded.witnesses == serial.witnesses
        # Worker-side oracle work is folded into the counters: a sharded run
        # reports at least the serial work (speculation can only add).
        assert (sharded.stats()["oracle_queries"]
                >= serial.stats()["oracle_queries"] > 0)
        # Re-certification shards through the same backends, bit-identically.
        serial_record = serial.certify(method="exhaustive")
        sharded_record = sharded.certify(method="exhaustive")
        assert serial_record.ok and sharded_record.ok
        assert (sharded_record.report.fault_sets_checked
                == serial_record.report.fault_sets_checked)
        assert (sharded_record.report.worst_stretch
                == serial_record.report.worst_stretch)


class TestTieredOracleMaintenance:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_tiered_repair_is_byte_identical_to_exact(self, fault_model):
        """Repair sweeps re-ask the oracle about dirty candidates; the tiered
        screens must leave every re-admission decision (and witness)
        unchanged across a whole churn journal."""
        graph = generators.gnm(20, 64, rng=10, connected=True, weighted=True)
        journal = random_journal(graph, 30, rng=17)
        exact = DynamicSpanner(graph.copy(), _spec(fault_model=fault_model))
        exact.apply_journal(journal)
        tiered = DynamicSpanner(
            graph.copy(), _spec(fault_model=fault_model, oracle="tiered"))
        tiered.apply_journal(journal)
        assert list(tiered.spanner.edges()) == list(exact.spanner.edges())
        assert tiered.witnesses == exact.witnesses


# --------------------------------------------------------------------------
# LiveEngine
# --------------------------------------------------------------------------

class TestLiveEngine:
    def _reference(self, spanner, source, target, faults):
        view = graph_minus(spanner, nodes=faults)
        return dijkstra_distances(view, source).get(target, math.inf)

    def test_answers_match_reference_across_churn(self):
        graph = generators.gnm(22, 60, rng=11, connected=True, weighted=True)
        session = BuildSession(graph, _spec())
        live = LiveEngine(session.dynamic())
        nodes = list(graph.nodes())
        queries = [(nodes[i], nodes[-1 - i], (nodes[(3 * i + 2) % len(nodes)],))
                   for i in range(6)]
        queries = [(s, t, f) for s, t, f in queries
                   if s != t and f[0] not in (s, t)]
        for chunk in range(4):
            answers = live.distances_batch(queries)
            for (s, t, f), got in zip(queries, answers):
                assert got == self._reference(live.dynamic.spanner, s, t, f)
            live.apply_journal(random_journal(live.dynamic.graph, 8,
                                              rng=100 + chunk))
        assert live.updates_applied == 32
        assert live.certify(method="sampled", samples=25, rng=0).ok

    def test_cache_survives_spanner_neutral_updates(self):
        graph = generators.gnm(16, 48, rng=12, connected=True, weighted=True)
        live = LiveEngine(BuildSession(graph, _spec()).dynamic())
        rejected = all_rejected_candidates(live.dynamic.graph,
                                           live.dynamic.spanner)
        assert rejected
        nodes = list(graph.nodes())
        batch = [(nodes[0], t, ()) for t in nodes[1:5]]
        live.distances_batch(batch)  # populate one cached vector
        assert len(live.engine.cache) == 1
        # Deleting a rejected edge leaves H untouched: the cache survives.
        u, v, _ = rejected[0]
        live.apply(EdgeDelete(u, v))
        assert live.cache_invalidations == 0
        hits_before = live.engine.cache.hits
        live.distances_batch(batch)
        assert live.engine.cache.hits == hits_before + 1
        # A spanner-changing update flushes it, attributed to the update.
        spanner_edge = next(iter(sorted(live.dynamic.spanner.edge_keys(),
                                        key=repr)))
        live.apply(EdgeDelete(*spanner_edge))
        assert live.cache_invalidations == 1
        assert len(live.engine.cache) == 0

    def test_stats_merge_serving_and_maintenance(self):
        graph = generators.gnm(12, 30, rng=13, connected=True)
        live = LiveEngine(BuildSession(graph, _spec()).dynamic())
        live.distance(0, 5)
        live.apply_journal(random_journal(graph, 5, rng=1))
        stats = live.stats()
        assert stats["updates_applied"] == 5
        assert stats["maintenance"]["updates_applied"] == 5
        assert "update_cache_invalidations" in stats
        assert stats["queries_served"] == 1


class TestInterleavedSessions:
    """Two client sessions interleaving over one :class:`LiveEngine`.

    The serving daemon multiplexes many connections onto one engine, so the
    result cache must behave under interleaved traffic: overlapping
    ``(source, fault-set)`` groups from different clients share one cached
    vector, an invalidating update flushes it exactly once (attributed to
    the update, not to either client), and every answer either side of the
    update equals the dict-reference Dijkstra over the then-current spanner.
    """

    def _reference(self, spanner, source, target, faults):
        view = graph_minus(spanner, nodes=faults)
        return dijkstra_distances(view, source).get(target, math.inf)

    def test_overlapping_groups_across_invalidating_update(self):
        graph = generators.gnm(20, 55, rng=21, connected=True, weighted=True)
        live = LiveEngine(BuildSession(graph, _spec()).dynamic())
        nodes = sorted(graph.nodes())
        source, fault = nodes[0], nodes[7]
        # Both clients query the same (source, fault-set) group — the unit
        # the cache keys on — with different (overlapping) target sets.
        client_a = [(source, t, (fault,)) for t in nodes[1:6]
                    if t not in (source, fault)]
        client_b = [(source, t, (fault,)) for t in nodes[4:9]
                    if t not in (source, fault)]

        def serve_and_check(queries):
            answers = live.distances_batch(queries)
            for (s, t, f), got in zip(queries, answers):
                assert got == self._reference(live.dynamic.spanner, s, t, f)

        # Interleave: A populates the group vector, B rides it.
        serve_and_check(client_a)
        hits_before = live.engine.cache.hits
        serve_and_check(client_b)
        assert live.engine.cache.hits == hits_before + 1
        assert live.cache_invalidations == 0

        # An invalidating update lands between the sessions: deleting a
        # spanner edge moves H's version, so the shared vector dies — once,
        # attributed to the update.
        spanner_edge = next(iter(sorted(live.dynamic.spanner.edge_keys(),
                                        key=repr)))
        live.apply(EdgeDelete(*spanner_edge))
        assert live.cache_invalidations == 1
        assert len(live.engine.cache) == 0

        # Both clients keep going; answers track the mutated spanner and
        # the cache rebuilds without further invalidations.
        serve_and_check(client_b)
        serve_and_check(client_a)
        assert live.cache_invalidations == 1
        assert live.engine.cache.hits > hits_before + 1


# --------------------------------------------------------------------------
# The update_churn workload generator
# --------------------------------------------------------------------------

class TestUpdateChurnWorkload:
    def test_stream_shape_and_determinism(self):
        graph = generators.gnm(18, 40, rng=14, connected=True, weighted=True)
        events = update_churn(graph, 6, 10, updates_per_session=3,
                              max_faults=1, rng=7)
        assert events == update_churn(graph, 6, 10, updates_per_session=3,
                                      max_faults=1, rng=7)
        queries = [e for e in events if isinstance(e, Query)]
        updates = [e for e in events if not isinstance(e, Query)]
        assert len(queries) == 60 and len(updates) == 18

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_stream_applies_cleanly_through_a_live_engine(self, fault_model):
        graph = generators.gnm(16, 40, rng=15, connected=True, weighted=True)
        events = update_churn(graph, 5, 8, updates_per_session=2,
                              max_faults=1, fault_model=fault_model, rng=9)
        live = LiveEngine(BuildSession(
            graph, _spec(fault_model=fault_model)).dynamic())
        batch = []
        for event in events:
            if isinstance(event, Query):
                batch.append((event.source, event.target, event.faults))
            else:
                if batch:
                    live.distances_batch(batch)
                    batch = []
                live.apply(event)
        if batch:
            live.distances_batch(batch)
        assert live.updates_applied == 10
        assert live.certify(method="sampled", samples=20, rng=0).ok


# --------------------------------------------------------------------------
# The acceptance anchor: 200+ updates on a 100+-node graph
# --------------------------------------------------------------------------

class TestAcceptanceAnchor:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_200_update_journal_on_100_node_graph(self, fault_model):
        """Incremental maintenance over a long journal stays certified, and
        its size stays within a small factor of a from-scratch rebuild."""
        graph = generators.gnm(100, 240, rng=16, connected=True, weighted=True)
        spec = _spec(fault_model=fault_model)
        dyn = DynamicSpanner(graph.copy(), spec)
        journal = random_journal(graph, 200, rng=23)
        dyn.apply_journal(journal)
        assert dyn.updates_applied == 200
        # Sampled certification (the exhaustive space is astronomically big).
        record = dyn.certify(method="sampled", samples=40, rng=0)
        assert record.ok, record.report.notes
        # Size-vs-rebuild: arrival order loses to weight order, but the
        # online factor stays small (documented in README / BENCH_dynamic).
        rebuilt = dyn.rebuild()
        ratio = dyn.spanner.number_of_edges() / rebuilt.spanner.number_of_edges()
        assert ratio <= 2.0, f"online size factor blew up: {ratio:.2f}"
        # The rebuilt spanner certifies under the same sampled fault sets.
        rebuilt_report = is_ft_spanner(
            dyn.graph, rebuilt.spanner, spec.stretch, spec.max_faults,
            fault_model, method="sampled", samples=40, rng=0)
        assert rebuilt_report.ok
