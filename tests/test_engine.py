"""Query engine tests: batched == per-query, caching, snapshots, workloads.

The engine's contract is that batching and caching are pure execution
strategies: every answer must equal the one-Dijkstra-per-query reference
(``bounded_distance`` over an ``ExclusionView``), for both fault models,
with the cache enabled and disabled.  The property tests drive that on
random graphs with random fault sets; the unit tests cover the LRU cache,
``Graph.version`` invalidation, snapshot round trips, and the traffic
generators.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.batch import MaskBuffer, plan_batches
from repro.engine.cache import ResultCache
from repro.engine.engine import EngineError, QueryEngine
from repro.engine.snapshot import SpannerSnapshot
from repro.engine.workload import (
    Query,
    fault_churn_sessions,
    split_batches,
    uniform_workload,
    zipf_workload,
)
from repro.faults.models import get_fault_model
from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.graph.io import load_graph_auto, save_graph_auto
from repro.graph.views import ExclusionView
from repro.paths.dijkstra import bounded_distance
from repro.paths.kernels import bounded_dijkstra_csr, multi_target_dijkstra_csr
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import RandomSource

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _reference_answers(graph, queries, fault_model):
    """One Dijkstra per query over the dict/view path (pre-engine semantics)."""
    model = get_fault_model(fault_model)
    answers = []
    for query in queries:
        view = model.apply(graph, query.faults)
        answers.append(bounded_distance(view, query.source, query.target, math.inf))
    return answers


@st.composite
def engine_instances(draw):
    """A random connected graph plus a random mixed query stream."""
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    fault_model = draw(st.sampled_from(["vertex", "edge"]))
    rng = RandomSource(seed)
    graph = Graph(nodes=range(n))
    order = list(range(n))
    rng.shuffle(order)
    for index in range(1, n):
        anchor = order[rng.randint(0, index - 1)]
        graph.add_edge(order[index], anchor, rng.uniform(1.0, 5.0))
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.bernoulli(0.4):
                graph.add_edge(u, v, rng.uniform(1.0, 5.0))
    model = get_fault_model(fault_model)
    elements = model.all_elements(graph)
    num_queries = draw(st.integers(min_value=1, max_value=25))
    queries = []
    for _ in range(num_queries):
        source = order[rng.randint(0, n - 1)]
        target = order[rng.randint(0, n - 1)]  # source == target allowed
        size = rng.randint(0, min(3, len(elements)))
        faults = tuple(rng.sample(elements, size)) if size else ()
        queries.append(Query(source, target, faults))
    return graph, queries, fault_model


# --------------------------------------------------------------------------
# Batched answers == per-query reference answers
# --------------------------------------------------------------------------

@SETTINGS
@given(engine_instances(), st.sampled_from([0, 4, 256]))
def test_batched_answers_match_per_query_reference(instance, cache_size):
    graph, queries, fault_model = instance
    snapshot = SpannerSnapshot(spanner=graph, stretch=1.0,
                               fault_model=fault_model)
    engine = QueryEngine(snapshot, cache_size=cache_size)
    got = engine.distances_batch(queries)
    expected = _reference_answers(graph, queries, fault_model)
    assert got == expected
    # Replaying the same batch (warm cache) must not change anything.
    assert engine.distances_batch(queries) == expected
    # Single-query path agrees with the batched path.
    for query, answer in zip(queries[:5], expected):
        assert engine.distance(query.source, query.target, query.faults) == answer
        assert engine.connectivity(query.source, query.target, query.faults) == \
            (not math.isinf(answer))


@SETTINGS
@given(engine_instances())
def test_multi_target_kernel_matches_single_target(instance):
    graph, queries, fault_model = instance
    model = get_fault_model(fault_model)
    csr = csr_snapshot(graph)
    buffer = MaskBuffer(csr, model)
    for query in queries[:6]:
        vertex_mask, edge_mask = buffer.apply(query.faults)
        targets = [csr.index_of[node] for node in graph.nodes()]
        source = csr.index_of[query.source]
        batched = multi_target_dijkstra_csr(csr, source, targets,
                                            vertex_mask, edge_mask)
        for target, got in zip(targets, batched):
            single = bounded_dijkstra_csr(csr, source, target, math.inf,
                                          vertex_mask, edge_mask)
            assert got == single
        buffer.reset()


def test_plan_batches_groups_and_positions():
    model = get_fault_model("vertex")
    queries = [Query(0, 1, (5,)), Query(0, 2, (5,)), Query(1, 2),
               Query(0, 3, (5,)), Query(1, 0)]
    plan = plan_batches(queries, model)
    assert plan.num_queries == 5
    assert plan.num_groups == 2
    first, second = plan.groups
    assert first.source == 0 and first.faults == frozenset({5})
    assert first.targets == [1, 2, 3] and first.positions == [0, 1, 3]
    assert second.source == 1 and second.faults == frozenset()
    assert second.targets == [2, 0] and second.positions == [2, 4]
    assert plan.largest_group == 3
    # Tuple queries and 2-tuples are accepted too.
    plan = plan_batches([(0, 1), (0, 2, (3,))], model)
    assert plan.num_groups == 2
    assert plan.groups[0].faults == frozenset()


def test_engine_handles_unknown_endpoints_and_masked_faults():
    graph = Graph(edges=[(0, 1), (1, 2)])
    engine = QueryEngine(SpannerSnapshot(spanner=graph, stretch=1.0))
    assert math.isinf(engine.distance(0, 99))
    assert math.isinf(engine.distance(99, 0))
    assert math.isinf(engine.distance(0, 2, faults=(1,)))
    assert math.isinf(engine.distance(0, 2, faults=(0,)))  # faulted endpoint
    assert engine.distance(0, 2, faults=(42,)) == 2.0  # unknown fault: no-op
    assert engine.distance(1, 1) == 0.0


# --------------------------------------------------------------------------
# Mask buffers
# --------------------------------------------------------------------------

def test_mask_buffer_reuse_and_reset():
    graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
    csr = csr_snapshot(graph)
    buffer = MaskBuffer(csr, get_fault_model("vertex"))
    vertex_mask, edge_mask = buffer.apply((1, 3))
    assert edge_mask is None
    assert list(vertex_mask) == [0, 1, 0, 1]
    with pytest.raises(RuntimeError):
        buffer.apply((0,))  # apply without reset must be caught
    buffer.reset()
    assert list(vertex_mask) == [0, 0, 0, 0]
    # The same buffer object is reused across applications.
    again, _ = buffer.apply((0,))
    assert again is vertex_mask
    buffer.reset()
    # Buffer transparently resizes after the snapshot grows.
    graph.add_edge(3, 4)
    resized, _ = buffer.apply((4,))
    assert len(resized) == 5 and resized[4] == 1
    buffer.reset()


# --------------------------------------------------------------------------
# Cache: LRU eviction and version invalidation
# --------------------------------------------------------------------------

def test_cache_lru_eviction_order_and_counters():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a": "b" is now least recent
    cache.put("c", 3)
    assert cache.evictions == 1
    assert cache.get("b") is None  # evicted
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.hits == 3 and cache.misses == 1
    assert 0.0 < cache.hit_rate < 1.0
    stats = cache.stats()
    assert stats["entries"] == 2 and stats["capacity"] == 2


def test_cache_disabled_at_zero_capacity():
    cache = ResultCache(capacity=0)
    assert not cache.enabled
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.misses == 1


def test_cache_version_invalidation():
    cache = ResultCache(capacity=8)
    cache.sync(3)
    cache.put("a", 1)
    cache.sync(3)  # unchanged version keeps entries
    assert cache.get("a") == 1
    cache.sync(4)
    assert cache.invalidations == 1
    assert cache.get("a") is None


def test_cache_flush_on_mid_session_version_bump_drops_stale_entries():
    """Mutating the served graph mid-session must flush *every* cached vector.

    Regression coverage for the versioned-LRU contract: warm the cache with
    several ``(source, faults)`` vectors, bump ``Graph.version`` behind the
    engine's back, and check that the stale entries are gone, the
    invalidation is counted, and post-mutation answers match the reference
    on the mutated graph.
    """
    graph = generators.gnm(16, 50, rng=9, connected=True, weighted=True)
    engine = QueryEngine(SpannerSnapshot(spanner=graph, stretch=1.0),
                         cache_size=32, admit_threshold=1)
    nodes = list(graph.nodes())
    sources = nodes[:4]
    queries = [(s, t) for s in sources for t in nodes[4:10]]
    before = engine.distances_batch(queries)
    assert len(engine.cache) == len(sources)  # one vector per source
    assert engine.cache.invalidations == 0
    version_before = graph.version

    # Structural mutation behind the snapshot: a new shortcut edge between a
    # queried pair that is not yet adjacent.  Version must move and every
    # cached vector must be dropped on the next lookup round.
    shortcut = next((s, t) for s in sources for t in nodes[4:10]
                    if not graph.has_edge(s, t))
    graph.add_edge(*shortcut, 1e-4)
    assert graph.version > version_before
    after = engine.distances_batch(queries)
    assert engine.cache.invalidations == 1
    assert len(engine.cache) == len(sources)  # repopulated, not stale
    reference = [bounded_distance(ExclusionView(graph), s, t, math.inf)
                 for s, t in queries]
    assert after == reference
    assert after != before  # the shortcut edge changed at least one answer

    # Removal-style mutation (recompiles the CSR) invalidates again; the
    # counter records each flush separately, and answers return to the
    # pre-mutation reference once the shortcut is gone.
    graph.remove_edge(*shortcut)
    engine.distances_batch(queries)
    assert engine.cache.invalidations == 2
    assert engine.distances_batch(queries) == before
    stats = engine.stats()["cache"]
    assert stats["invalidations"] == 2 and stats["entries"] == len(sources)


def test_engine_invalidates_on_graph_version_change():
    graph = generators.gnm(14, 40, rng=2, connected=True, weighted=True)
    engine = QueryEngine(SpannerSnapshot(spanner=graph, stretch=1.0),
                         cache_size=32)
    nodes = list(graph.nodes())
    before = engine.distance(nodes[0], nodes[1])
    # First repeat promotes the key past the admission threshold (cached
    # vector computed), second repeat is served from cache.
    assert engine.distance(nodes[0], nodes[1]) == before
    assert engine.distance(nodes[0], nodes[1]) == before
    assert engine.cache.hits >= 1
    # Mutating the served graph must flush cached vectors, not serve stale ones.
    graph.add_edge(nodes[0], nodes[1], 1e-3)
    after = engine.distance(nodes[0], nodes[1])
    assert after == 1e-3
    assert engine.cache.invalidations == 1
    # And answers keep matching the reference on the mutated graph.
    assert after == bounded_distance(ExclusionView(graph), nodes[0], nodes[1],
                                     math.inf)


def test_stretch_audit_batch_parallel_matches_serial():
    """Sharded audit sweeps return the exact per-call audits, plus counters."""
    graph = generators.gnm(18, 56, rng=6, connected=True, weighted=True)
    result = ft_greedy_spanner(graph, 3, 1)
    snapshot = SpannerSnapshot.from_result(result)
    nodes = list(graph.nodes())
    requests = [(s, t, (w,)) for s in nodes[:3] for t in nodes[3:7]
                for w in nodes[7:9]]
    serial = QueryEngine(snapshot).stretch_audit_batch(requests)
    pooled_engine = QueryEngine(snapshot, backend="process", workers=2)
    pooled = pooled_engine.stretch_audit_batch(requests)
    assert pooled == serial
    assert pooled_engine.audits == len(requests)
    assert pooled_engine.audit_kernel_calls == len(requests)
    assert all(audit.within_budget for audit in pooled)


def test_stretch_audit_batch_requires_original():
    graph = generators.gnm(12, 30, rng=1, connected=True)
    engine = QueryEngine(SpannerSnapshot(spanner=graph, stretch=1.0),
                         backend="process", workers=2)
    with pytest.raises(EngineError):
        engine.stretch_audit_batch([(0, 1, ())])


# --------------------------------------------------------------------------
# Snapshots
# --------------------------------------------------------------------------

def test_snapshot_roundtrip_with_original_and_metadata(tmp_path):
    graph = generators.gnm(16, 48, rng=5, connected=True)
    result = ft_greedy_spanner(graph, 3, 1)
    snapshot = SpannerSnapshot.from_result(result)
    assert snapshot.metadata["oracle"] == "branch-and-bound"
    path = tmp_path / "spanner.snapshot.json"
    snapshot.save(path)
    assert SpannerSnapshot.is_snapshot_file(path)
    loaded = SpannerSnapshot.load(path)
    assert loaded.spanner.same_structure(snapshot.spanner)
    assert loaded.original.same_structure(graph)
    assert loaded.stretch == 3 and loaded.max_faults == 1
    assert loaded.fault_model == "vertex"
    assert loaded.algorithm == result.algorithm
    # A served engine over the loaded snapshot answers like the in-memory one.
    nodes = list(graph.nodes())
    queries = [Query(nodes[i], nodes[-1 - i]) for i in range(5)]
    assert QueryEngine(loaded).distances_batch(queries) == \
        QueryEngine(snapshot).distances_batch(queries)


def test_snapshot_file_detection_rejects_plain_graphs(tmp_path):
    graph = Graph(edges=[(0, 1)])
    graph_path = tmp_path / "graph.json"
    save_graph_auto(graph, graph_path)
    assert not SpannerSnapshot.is_snapshot_file(graph_path)
    assert not SpannerSnapshot.is_snapshot_file(tmp_path / "missing.json")
    assert not SpannerSnapshot.is_snapshot_file(tmp_path / "graph.edges")


def test_snapshot_from_graph_files_uses_auto_dispatch(tmp_path):
    graph = generators.gnm(10, 20, rng=1, connected=True)
    spanner_path = tmp_path / "spanner.edges"  # edge list on purpose
    original_path = tmp_path / "original.json"
    save_graph_auto(graph, spanner_path)
    save_graph_auto(graph, original_path)
    snapshot = SpannerSnapshot.from_graph_files(
        spanner_path, original_path=original_path, stretch=3.0, max_faults=1)
    assert snapshot.spanner.number_of_edges() == graph.number_of_edges()
    assert snapshot.original is not None
    assert snapshot.describe()["has_original"]


def test_snapshot_rejects_unknown_fault_model():
    with pytest.raises(ValueError):
        SpannerSnapshot(spanner=Graph(edges=[(0, 1)]), stretch=1.0,
                        fault_model="bogus")


def test_load_save_graph_auto_roundtrip(tmp_path):
    graph = generators.gnm(8, 14, rng=4, connected=True, weighted=True)
    for name in ("g.json", "g.edges"):
        path = tmp_path / name
        save_graph_auto(graph, path)
        assert load_graph_auto(path).same_structure(graph)


# --------------------------------------------------------------------------
# Stretch audits
# --------------------------------------------------------------------------

def test_stretch_audit_within_budget_honours_construction():
    graph = generators.gnm(14, 50, rng=9, connected=True, weighted=True)
    snapshot = SpannerSnapshot.from_result(ft_greedy_spanner(graph, 3, 1))
    engine = QueryEngine(snapshot)
    rng = RandomSource(0)
    nodes = list(graph.nodes())
    for _ in range(25):
        source, target = rng.sample(nodes, 2)
        fault = (rng.choice([n for n in nodes if n not in (source, target)]),)
        audit = engine.stretch_audit(source, target, fault)
        assert audit.within_budget
        assert audit.ok, f"stretch {audit.stretch} for faults {fault}"
        assert audit.stretch >= 1.0 or math.isinf(audit.spanner_distance)
    assert engine.audits == 25


def test_stretch_audit_requires_original():
    engine = QueryEngine(SpannerSnapshot(spanner=Graph(edges=[(0, 1)]),
                                         stretch=1.0))
    with pytest.raises(EngineError):
        engine.stretch_audit(0, 1)


def test_stretch_audit_of_identical_endpoints():
    graph = Graph(edges=[(0, 1)])
    snapshot = SpannerSnapshot(spanner=graph.copy(), stretch=3.0,
                               original=graph)
    audit = QueryEngine(snapshot).stretch_audit(0, 0)
    assert audit.spanner_distance == 0.0 and audit.original_distance == 0.0
    assert audit.stretch == 1.0 and audit.ok  # must not divide 0/0


def test_audit_kernel_calls_do_not_skew_batching_savings():
    graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
    snapshot = SpannerSnapshot(spanner=graph.copy(), stretch=3.0,
                               original=graph)
    engine = QueryEngine(snapshot)
    for _ in range(3):
        engine.stretch_audit(0, 2)
    stats = engine.stats()
    assert stats["audit_kernel_calls"] == 3
    assert stats["kernel_calls_saved"] >= 0


def test_stretch_audit_disconnected_pair_is_vacuous():
    graph = Graph(edges=[(0, 1)])
    graph.add_node(2)  # isolated: unreachable in G and H
    snapshot = SpannerSnapshot(spanner=graph.copy(), stretch=1.0,
                               original=graph)
    audit = QueryEngine(snapshot).stretch_audit(0, 2)
    assert math.isinf(audit.original_distance)
    assert audit.stretch == 1.0 and audit.ok


# --------------------------------------------------------------------------
# Workload generators
# --------------------------------------------------------------------------

def test_workloads_are_deterministic_and_well_formed():
    graph = generators.gnm(20, 60, rng=6, connected=True)
    for maker in (
        lambda seed: uniform_workload(graph, 50, max_faults=2, rng=seed),
        lambda seed: zipf_workload(graph, 50, max_faults=2, rng=seed),
        lambda seed: fault_churn_sessions(graph, 5, 10, max_faults=2, rng=seed),
    ):
        first, second = maker(13), maker(13)
        assert first == second
        assert first != maker(14)
        for query in first:
            assert graph.has_node(query.source)
            assert graph.has_node(query.target)
            assert len(query.faults) <= 2


def test_zipf_workload_is_source_skewed_and_pooled():
    graph = generators.gnm(40, 120, rng=8, connected=True)
    queries = zipf_workload(graph, 400, skew=1.3, max_faults=2,
                            fault_pool=4, rng=3)
    sources = {}
    fault_sets = set()
    for query in queries:
        sources[query.source] = sources.get(query.source, 0) + 1
        fault_sets.add(frozenset(query.faults))
        assert query.source != query.target
    assert len(fault_sets) <= 4
    # The most popular source dominates a uniform share by a wide margin.
    assert max(sources.values()) > 3 * (400 / graph.number_of_nodes())


def test_fault_churn_sessions_share_faults_within_a_session():
    graph = generators.gnm(15, 40, rng=2, connected=True)
    queries = fault_churn_sessions(graph, 4, 10, max_faults=2, rng=5)
    assert len(queries) == 40
    for start in range(0, 40, 10):
        session = queries[start:start + 10]
        assert len({q.faults for q in session}) == 1


def test_edge_fault_workloads_draw_edges():
    graph = generators.gnm(12, 30, rng=1, connected=True)
    queries = uniform_workload(graph, 30, max_faults=2, fault_model="edge",
                               rng=0)
    saw_fault = False
    for query in queries:
        for u, v in query.faults:
            saw_fault = True
            assert graph.has_edge(u, v)
    assert saw_fault


def test_split_batches_covers_stream():
    queries = [Query(0, i) for i in range(10)]
    batches = list(split_batches(queries, 4))
    assert [len(b) for b in batches] == [4, 4, 2]
    assert [q for batch in batches for q in batch] == queries
    with pytest.raises(ValueError):
        list(split_batches(queries, 0))


def test_workload_rejects_trivial_graphs():
    with pytest.raises(ValueError):
        uniform_workload(Graph(nodes=[0]), 5)


# --------------------------------------------------------------------------
# Stats report
# --------------------------------------------------------------------------

def test_stats_report_is_json_serialisable_and_counts_savings():
    graph = generators.gnm(18, 70, rng=12, connected=True, weighted=True)
    engine = QueryEngine(SpannerSnapshot(spanner=graph, stretch=1.0),
                         cache_size=64)
    queries = zipf_workload(graph, 200, max_faults=1, fault_pool=3, rng=4)
    for batch in split_batches(queries, 32):
        engine.distances_batch(batch)
    stats = engine.stats()
    json.dumps(stats)  # must serialise for the --json CLI path
    assert stats["queries_served"] == 200
    assert stats["batches_planned"] == 7
    assert stats["kernel_calls"] < stats["queries_served"]
    assert stats["kernel_calls_saved"] == \
        stats["queries_served"] - stats["kernel_calls"]
    assert stats["cache"]["hits"] > 0
    assert stats["queries_per_second"] > 0
