"""Tests for the experiment harness: workloads, registry, and each driver.

The drivers are run on deliberately tiny configurations (overriding the quick
presets) so the whole file stays fast; what is asserted is the *shape and
content* of each result table — the same properties EXPERIMENTS.md relies on.
"""

import pytest

from repro.experiments import workloads
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import (
    e1_size_vs_n,
    e2_size_vs_f,
    e3_vs_baselines,
    e4_lower_bound,
    e5_blocking_sets,
    e6_subsampling,
    e7_vft_vs_eft,
    e8_runtime,
    e9_fault_verification,
    e10_edge_blocking,
)
from repro.graph.components import is_connected


class TestWorkloads:
    def test_registry_lists_all(self):
        assert len(workloads.WORKLOADS) >= 10
        for name, workload in workloads.WORKLOADS.items():
            assert workload.name == name
            assert workload.description

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            workloads.get_workload("nope")

    def test_instantiation_is_reproducible(self):
        a = workloads.get_workload("tiny-gnm").instantiate(0)
        b = workloads.get_workload("tiny-gnm").instantiate(0)
        assert a.same_structure(b)

    @pytest.mark.parametrize("name", ["tiny-gnm", "gnm-small-dense", "caveman", "grid"])
    def test_selected_workloads_are_connected(self, name):
        graph = workloads.get_workload(name).instantiate(1)
        assert is_connected(graph)
        assert graph.metadata.get("workload", name) == name

    def test_build_workloads_independent_streams(self):
        pairs = workloads.build_workloads(["tiny-gnm", "tiny-weighted"], rng=3)
        assert [name for name, _ in pairs] == ["tiny-gnm", "tiny-weighted"]

    def test_gnm_scaling_series(self):
        series = workloads.gnm_scaling_series([10, 20], 6, rng=0)
        assert [n for n, _ in series] == [10, 20]
        for n, graph in series:
            assert graph.number_of_nodes() == n
            assert is_connected(graph)


class TestRegistry:
    def test_all_ten_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_lookup_case_insensitive(self):
        assert get_experiment("e3").ident == "E3"
        with pytest.raises(ValueError):
            get_experiment("E99")

    def test_specs_have_metadata(self):
        for spec in EXPERIMENTS.values():
            assert spec.title and spec.claim and spec.module.startswith("repro.experiments.")

    def test_run_experiment_dispatch(self):
        table = run_experiment("E10", scale="quick", rng=0)
        assert len(table) > 0


class TestDrivers:
    """Each driver on a minimal configuration, asserting the paper's claims."""

    def test_e1_ratio_bounded(self):
        config = e1_size_vs_n.Config(sizes=[20, 30], average_degree=10,
                                     fault_budgets=[1], trials=1)
        table = e1_size_vs_n.run(config, rng=0)
        assert len(table) == 2
        assert all(ratio < 3.0 for ratio in table.column("ratio"))

    def test_e1_fitted_slope_helper(self):
        assert e1_size_vs_n.fitted_slope([(1.0, 1.0), (10.0, 10.0)]) == pytest.approx(1.0)
        assert e1_size_vs_n.fitted_slope([(1.0, 1.0)]) != e1_size_vs_n.fitted_slope(
            [(1.0, 1.0), (2.0, 4.0)])

    def test_e2_sizes_monotone_and_sublinear(self):
        config = e2_size_vs_f.Config(workload="tiny-gnm", stretches=[3.0],
                                     fault_budgets=[0, 1, 2])
        table = e2_size_vs_f.run(config, rng=0)
        sizes = table.column("spanner_edges")
        assert sizes == sorted(sizes)
        # Growth from f=1 to f=2 is below 2x (sublinear in f).
        assert sizes[2] < 2 * sizes[1]

    def test_e3_ft_greedy_wins(self):
        config = e3_vs_baselines.Config(workloads=["tiny-gnm"], fault_budgets=[1],
                                        verify_samples=5,
                                        max_sampling_baseline_samples=30)
        table = e3_vs_baselines.run(config, rng=0)
        by_algo = {row["algorithm"]: row for row in table.rows}
        assert by_algo["ft-greedy"]["spanner_edges"] <= by_algo["sampling-union"]["spanner_edges"]
        assert by_algo["ft-greedy"]["spanner_edges"] <= by_algo["trivial"]["spanner_edges"]
        assert by_algo["ft-greedy"]["ft_check"] == "ok"
        assert by_algo["greedy (f=0)"]["spanner_edges"] <= by_algo["ft-greedy"]["spanner_edges"]

    def test_e4_all_edges_forced(self):
        config = e4_lower_bound.Config(cases=[(2, 3.0, 10)], forced_edge_sample=10)
        table = e4_lower_bound.run(config, rng=0)
        row = table.rows[0]
        assert row["forced_fraction"] == 1.0
        assert row["greedy_keeps"] == row["edges"]

    def test_e5_blocking_sets_within_bound(self):
        config = e5_blocking_sets.Config(workloads=["tiny-gnm"], fault_budgets=[1])
        table = e5_blocking_sets.run(config, rng=0)
        for row in table.rows:
            assert row["within_bound"]
            assert row["verified"] == "ok"

    def test_e6_girth_holds_at_prescribed_sample_size(self):
        config = e6_subsampling.Config(workloads=["tiny-gnm"], fault_budgets=[1],
                                       trials=3, sample_multipliers=[1.0])
        table = e6_subsampling.run(config, rng=0)
        assert all(row["girth_ok"] for row in table.rows)

    def test_e7_eft_not_larger_than_vft(self):
        config = e7_vft_vs_eft.Config(workloads=["tiny-gnm"], fault_budgets=[1])
        table = e7_vft_vs_eft.run(config, rng=0)
        for row in table.rows:
            assert row["eft_edges"] <= row["vft_edges"]
            assert row["greedy_f0"] <= row["vft_edges"]

    def test_e8_heuristic_not_slower_than_exhaustive(self):
        config = e8_runtime.Config(workload="tiny-gnm", fault_budgets=[1],
                                   exhaustive_up_to=1, verify_samples=5)
        table = e8_runtime.run(config, rng=0)
        by_oracle = {row["oracle"]: row for row in table.rows}
        assert by_oracle["exhaustive"]["distance_queries"] >= \
            by_oracle["branch-and-bound"]["distance_queries"]
        assert by_oracle["branch-and-bound"]["ft_check"] == "ok"

    def test_e9_ft_greedy_within_stretch_but_plain_greedy_not(self):
        config = e9_fault_verification.Config(workloads=["tiny-gnm"], fault_budgets=[1],
                                              sampled_checks=10)
        table = e9_fault_verification.run(config, rng=0)
        by_algo = {row["algorithm"]: row for row in table.rows}
        assert by_algo["ft-greedy"]["within_stretch"]
        assert not by_algo["greedy (f=0)"]["within_stretch"]

    def test_e10_edge_blocking_verified(self):
        config = e10_edge_blocking.Config(cases=[(2, 3.0, 10)])
        table = e10_edge_blocking.run(config, rng=0)
        row = table.rows[0]
        assert row["within_bound"]
        assert row["verified"] == "ok"

    def test_quick_presets_exist(self):
        for module in (e1_size_vs_n, e2_size_vs_f, e3_vs_baselines, e4_lower_bound,
                       e5_blocking_sets, e6_subsampling, e7_vft_vs_eft, e8_runtime,
                       e9_fault_verification, e10_edge_blocking):
            quick = module.Config.quick()
            full = module.Config.full()
            assert quick is not None and full is not None
