"""Tests for the fault-check oracles (the inner decision problem of Algorithm 1)."""

import math

import pytest

from repro.faults.models import get_fault_model
from repro.graph import generators
from repro.graph.core import Graph
from repro.paths.dijkstra import bounded_distance
from repro.spanners.fault_check import (
    BranchAndBoundOracle,
    ExhaustiveOracle,
    FaultCheckOracle,
    GreedyPathPackingOracle,
    get_oracle,
)


def _witness_is_valid(graph, source, target, budget, max_faults, model_name, witness):
    """Independent check that a returned fault set really breaks the pair."""
    model = get_fault_model(model_name)
    assert len(witness) <= max_faults
    view = model.apply(graph, witness)
    return bounded_distance(view, source, target, budget) > budget


class TestOracleResolution:
    def test_default_is_branch_and_bound(self):
        assert isinstance(get_oracle(None), BranchAndBoundOracle)

    def test_lookup_by_name(self):
        assert isinstance(get_oracle("exhaustive"), ExhaustiveOracle)
        assert isinstance(get_oracle("bnb"), BranchAndBoundOracle)
        assert isinstance(get_oracle("heuristic"), GreedyPathPackingOracle)

    def test_instance_passthrough(self):
        oracle = ExhaustiveOracle()
        assert get_oracle(oracle) is oracle

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_oracle("magic")

    def test_exactness_flags(self):
        assert ExhaustiveOracle.exact
        assert BranchAndBoundOracle.exact
        assert not GreedyPathPackingOracle.exact


class TestSimpleInstances:
    def test_already_far_apart_needs_no_faults(self, weighted_path):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(weighted_path, 0, 4, budget=5.0,
                                                 max_faults=2, fault_model="vertex")
        assert witness == frozenset()

    def test_single_cut_vertex(self):
        path = generators.path_graph(3)  # 0 - 1 - 2
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(path, 0, 2, budget=10.0,
                                                 max_faults=1, fault_model="vertex")
        assert witness == frozenset({1})

    def test_single_cut_edge(self):
        path = generators.path_graph(2)
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(path, 0, 1, budget=10.0,
                                                 max_faults=1, fault_model="edge")
        assert witness == frozenset({(0, 1)})

    def test_two_disjoint_paths_need_two_faults(self):
        # Two vertex-disjoint 2-paths between 0 and 3.
        graph = Graph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        oracle = BranchAndBoundOracle()
        assert oracle.find_breaking_fault_set(graph, 0, 3, budget=5.0,
                                              max_faults=1, fault_model="vertex") is None
        witness = oracle.find_breaking_fault_set(graph, 0, 3, budget=5.0,
                                                 max_faults=2, fault_model="vertex")
        assert witness == frozenset({1, 2})

    def test_budget_makes_long_detour_irrelevant(self):
        # 0-1-2 plus a long detour 0-3-4-5-2: with budget 3 the detour does not help.
        graph = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (5, 2)])
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(graph, 0, 2, budget=3.0,
                                                 max_faults=1, fault_model="vertex")
        assert witness == frozenset({1})

    def test_direct_edge_cannot_be_broken_by_vertex_faults(self, triangle):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(triangle, 0, 1, budget=1.0,
                                                 max_faults=3, fault_model="vertex")
        assert witness is None

    def test_direct_edge_can_be_broken_by_edge_fault(self, triangle):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(triangle, 0, 1, budget=1.5,
                                                 max_faults=1, fault_model="edge")
        assert witness is not None
        assert _witness_is_valid(triangle, 0, 1, 1.5, 1, "edge", witness)

    def test_zero_fault_budget(self, triangle):
        oracle = BranchAndBoundOracle()
        assert oracle.find_breaking_fault_set(triangle, 0, 1, budget=2.0,
                                              max_faults=0, fault_model="vertex") is None


class TestOracleAgreement:
    """Exact oracles must agree with each other; witnesses must be genuine."""

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("max_faults", [0, 1, 2])
    def test_exhaustive_vs_branch_and_bound(self, fault_model, max_faults):
        graph = generators.gnm(10, 22, rng=13, connected=True)
        exhaustive = ExhaustiveOracle()
        bnb = BranchAndBoundOracle()
        budget = 3.0
        pairs = [(0, 5), (1, 7), (2, 9), (3, 4), (6, 8)]
        for source, target in pairs:
            answer_a = exhaustive.find_breaking_fault_set(
                graph, source, target, budget, max_faults, fault_model)
            answer_b = bnb.find_breaking_fault_set(
                graph, source, target, budget, max_faults, fault_model)
            assert (answer_a is None) == (answer_b is None)
            for witness in (answer_a, answer_b):
                if witness is not None:
                    assert _witness_is_valid(graph, source, target, budget,
                                             max_faults, fault_model, witness)

    def test_heuristic_witnesses_are_sound(self):
        graph = generators.gnm(12, 30, rng=3, connected=True)
        heuristic = GreedyPathPackingOracle()
        for source, target in [(0, 6), (1, 8), (2, 11)]:
            witness = heuristic.find_breaking_fault_set(
                graph, source, target, 3.0, 2, "vertex")
            if witness is not None:
                assert _witness_is_valid(graph, source, target, 3.0, 2, "vertex", witness)

    def test_heuristic_never_claims_break_when_exact_says_impossible(self):
        graph = generators.gnm(12, 30, rng=5, connected=True)
        heuristic = GreedyPathPackingOracle()
        exact = BranchAndBoundOracle()
        for source, target in [(0, 1), (2, 3), (4, 5)]:
            heuristic_answer = heuristic.find_breaking_fault_set(
                graph, source, target, 3.0, 1, "vertex")
            exact_answer = exact.find_breaking_fault_set(
                graph, source, target, 3.0, 1, "vertex")
            if exact_answer is None:
                assert heuristic_answer is None


class TestStats:
    def test_counters_accumulate_and_reset(self, small_random):
        oracle = BranchAndBoundOracle()
        oracle.find_breaking_fault_set(small_random, 0, 5, 3.0, 1, "vertex")
        assert oracle.stats.queries == 1
        assert oracle.stats.distance_queries >= 1
        oracle.stats.reset()
        assert oracle.stats.queries == 0
        assert oracle.stats.distance_queries == 0

    def test_branch_and_bound_cheaper_than_exhaustive(self):
        graph = generators.gnm(14, 40, rng=2, connected=True)
        exhaustive = ExhaustiveOracle()
        bnb = BranchAndBoundOracle()
        for source, target in [(0, 7), (1, 9)]:
            exhaustive.find_breaking_fault_set(graph, source, target, 3.0, 2, "vertex")
            bnb.find_breaking_fault_set(graph, source, target, 3.0, 2, "vertex")
        assert bnb.stats.distance_queries < exhaustive.stats.distance_queries
