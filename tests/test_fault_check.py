"""Tests for the fault-check oracles (the inner decision problem of Algorithm 1)."""

import math

import pytest

from repro.faults.models import get_fault_model
from repro.graph import generators
from repro.graph.core import Graph
from repro.paths.dijkstra import bounded_distance
from repro.spanners.fault_check import (
    SCREEN_RESOLVED_OUTCOMES,
    BranchAndBoundOracle,
    ExhaustiveOracle,
    FaultCheckOracle,
    GreedyPathPackingOracle,
    TieredOracle,
    available_oracles,
    describe_oracles,
    get_oracle,
)


def _witness_is_valid(graph, source, target, budget, max_faults, model_name, witness):
    """Independent check that a returned fault set really breaks the pair."""
    model = get_fault_model(model_name)
    assert len(witness) <= max_faults
    view = model.apply(graph, witness)
    return bounded_distance(view, source, target, budget) > budget


class TestOracleResolution:
    def test_default_is_branch_and_bound(self):
        assert isinstance(get_oracle(None), BranchAndBoundOracle)

    def test_lookup_by_name(self):
        assert isinstance(get_oracle("exhaustive"), ExhaustiveOracle)
        assert isinstance(get_oracle("bnb"), BranchAndBoundOracle)
        assert isinstance(get_oracle("heuristic"), GreedyPathPackingOracle)

    def test_instance_passthrough(self):
        oracle = ExhaustiveOracle()
        assert get_oracle(oracle) is oracle

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_oracle("magic")

    def test_exactness_flags(self):
        assert ExhaustiveOracle.exact
        assert BranchAndBoundOracle.exact
        assert not GreedyPathPackingOracle.exact


class TestSimpleInstances:
    def test_already_far_apart_needs_no_faults(self, weighted_path):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(weighted_path, 0, 4, budget=5.0,
                                                 max_faults=2, fault_model="vertex")
        assert witness == frozenset()

    def test_single_cut_vertex(self):
        path = generators.path_graph(3)  # 0 - 1 - 2
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(path, 0, 2, budget=10.0,
                                                 max_faults=1, fault_model="vertex")
        assert witness == frozenset({1})

    def test_single_cut_edge(self):
        path = generators.path_graph(2)
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(path, 0, 1, budget=10.0,
                                                 max_faults=1, fault_model="edge")
        assert witness == frozenset({(0, 1)})

    def test_two_disjoint_paths_need_two_faults(self):
        # Two vertex-disjoint 2-paths between 0 and 3.
        graph = Graph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        oracle = BranchAndBoundOracle()
        assert oracle.find_breaking_fault_set(graph, 0, 3, budget=5.0,
                                              max_faults=1, fault_model="vertex") is None
        witness = oracle.find_breaking_fault_set(graph, 0, 3, budget=5.0,
                                                 max_faults=2, fault_model="vertex")
        assert witness == frozenset({1, 2})

    def test_budget_makes_long_detour_irrelevant(self):
        # 0-1-2 plus a long detour 0-3-4-5-2: with budget 3 the detour does not help.
        graph = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (5, 2)])
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(graph, 0, 2, budget=3.0,
                                                 max_faults=1, fault_model="vertex")
        assert witness == frozenset({1})

    def test_direct_edge_cannot_be_broken_by_vertex_faults(self, triangle):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(triangle, 0, 1, budget=1.0,
                                                 max_faults=3, fault_model="vertex")
        assert witness is None

    def test_direct_edge_can_be_broken_by_edge_fault(self, triangle):
        oracle = BranchAndBoundOracle()
        witness = oracle.find_breaking_fault_set(triangle, 0, 1, budget=1.5,
                                                 max_faults=1, fault_model="edge")
        assert witness is not None
        assert _witness_is_valid(triangle, 0, 1, 1.5, 1, "edge", witness)

    def test_zero_fault_budget(self, triangle):
        oracle = BranchAndBoundOracle()
        assert oracle.find_breaking_fault_set(triangle, 0, 1, budget=2.0,
                                              max_faults=0, fault_model="vertex") is None


class TestOracleAgreement:
    """Exact oracles must agree with each other; witnesses must be genuine."""

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("max_faults", [0, 1, 2])
    def test_exhaustive_vs_branch_and_bound(self, fault_model, max_faults):
        graph = generators.gnm(10, 22, rng=13, connected=True)
        exhaustive = ExhaustiveOracle()
        bnb = BranchAndBoundOracle()
        budget = 3.0
        pairs = [(0, 5), (1, 7), (2, 9), (3, 4), (6, 8)]
        for source, target in pairs:
            answer_a = exhaustive.find_breaking_fault_set(
                graph, source, target, budget, max_faults, fault_model)
            answer_b = bnb.find_breaking_fault_set(
                graph, source, target, budget, max_faults, fault_model)
            assert (answer_a is None) == (answer_b is None)
            for witness in (answer_a, answer_b):
                if witness is not None:
                    assert _witness_is_valid(graph, source, target, budget,
                                             max_faults, fault_model, witness)

    def test_heuristic_witnesses_are_sound(self):
        graph = generators.gnm(12, 30, rng=3, connected=True)
        heuristic = GreedyPathPackingOracle()
        for source, target in [(0, 6), (1, 8), (2, 11)]:
            witness = heuristic.find_breaking_fault_set(
                graph, source, target, 3.0, 2, "vertex")
            if witness is not None:
                assert _witness_is_valid(graph, source, target, 3.0, 2, "vertex", witness)

    def test_heuristic_never_claims_break_when_exact_says_impossible(self):
        graph = generators.gnm(12, 30, rng=5, connected=True)
        heuristic = GreedyPathPackingOracle()
        exact = BranchAndBoundOracle()
        for source, target in [(0, 1), (2, 3), (4, 5)]:
            heuristic_answer = heuristic.find_breaking_fault_set(
                graph, source, target, 3.0, 1, "vertex")
            exact_answer = exact.find_breaking_fault_set(
                graph, source, target, 3.0, 1, "vertex")
            if exact_answer is None:
                assert heuristic_answer is None


class TestTieredOracle:
    """Screens may answer early but never differently: every tiered verdict
    — and every returned witness — must equal the branch-and-bound answer,
    query for query, across fault models, budgets, and query order (the
    warm SSSP cache and witness replay make the oracle stateful)."""

    def test_resolution_and_description(self):
        assert isinstance(get_oracle("tiered"), TieredOracle)
        assert TieredOracle.exact
        assert "tiered" in available_oracles()
        rows = {row["name"]: row for row in describe_oracles()}
        assert rows["tiered"]["exact"] is True

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("max_faults", [0, 1, 2])
    def test_matches_branch_and_bound_witness_for_witness(self, fault_model,
                                                          max_faults):
        graph = generators.gnm(14, 42, rng=7, connected=True, weighted=True)
        tiered = TieredOracle()
        bnb = BranchAndBoundOracle()
        # Repeated sources back-to-back hit the warm SSSP cache and witness
        # replay; source changes exercise their invalidation.
        pairs = [(0, 8), (0, 11), (0, 5), (3, 9), (3, 12), (6, 2), (6, 13)]
        for budget in (2.0, 4.0):
            for source, target in pairs:
                a = tiered.find_breaking_fault_set(
                    graph, source, target, budget, max_faults, fault_model)
                b = bnb.find_breaking_fault_set(
                    graph, source, target, budget, max_faults, fault_model)
                assert a == b, (source, target, budget)
                if a is not None:
                    assert _witness_is_valid(graph, source, target, budget,
                                             max_faults, fault_model, a)

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_screen_resolved_queries_agree_with_exact(self, fault_model):
        """Every query the screens answered outright (no exact fallthrough)
        gets replayed against a fresh exact oracle — the core soundness
        property: screens reject early or prove safe, never decide anew."""
        graph = generators.gnm(16, 52, rng=19, connected=True, weighted=True)
        tiered = TieredOracle()
        screened = 0
        for source in range(0, 12, 3):
            for target in range(1, 16, 2):
                if source == target:
                    continue
                resolved_before = tiered.stats.screen_resolved
                answer = tiered.find_breaking_fault_set(
                    graph, source, target, 3.0, 2, fault_model)
                if tiered.stats.screen_resolved == resolved_before:
                    continue  # fell through: covered by the matrix test
                screened += 1
                exact = BranchAndBoundOracle().find_breaking_fault_set(
                    graph, source, target, 3.0, 2, fault_model)
                assert answer == exact, (source, target)
        assert screened > 0, "workload never exercised a screen"

    def test_stats_reconcile_per_query(self):
        graph = generators.gnm(12, 30, rng=3, connected=True, weighted=True)
        tiered = TieredOracle()
        for source, target in [(0, 6), (0, 9), (1, 8), (2, 11), (2, 4)]:
            tiered.find_breaking_fault_set(graph, source, target, 3.0, 2,
                                           "vertex")
        stats = tiered.stats
        outcomes = stats.screen_outcomes
        assert set(outcomes) <= set(SCREEN_RESOLVED_OUTCOMES) | {"fallthrough"}
        assert stats.screen_checks == stats.queries == 5
        assert stats.screen_resolved + outcomes.get("fallthrough", 0) == 5
        assert stats.exact_checks == outcomes.get("fallthrough", 0)

    def test_hit_rate_histogram_observes_resolved_fraction(self):
        graph = generators.gnm(12, 30, rng=3, connected=True, weighted=True)
        tiered = TieredOracle()
        for source, target in [(0, 6), (1, 8), (2, 11)]:
            tiered.find_breaking_fault_set(graph, source, target, 3.0, 1,
                                           "edge")
        rate = tiered.stats.observe_screen_hit_rate()
        assert rate is not None
        assert rate == tiered.stats.screen_resolved / tiered.stats.queries


class TestStats:
    def test_counters_accumulate_and_reset(self, small_random):
        oracle = BranchAndBoundOracle()
        oracle.find_breaking_fault_set(small_random, 0, 5, 3.0, 1, "vertex")
        assert oracle.stats.queries == 1
        assert oracle.stats.distance_queries >= 1
        oracle.stats.reset()
        assert oracle.stats.queries == 0
        assert oracle.stats.distance_queries == 0

    def test_branch_and_bound_cheaper_than_exhaustive(self):
        graph = generators.gnm(14, 40, rng=2, connected=True)
        exhaustive = ExhaustiveOracle()
        bnb = BranchAndBoundOracle()
        for source, target in [(0, 7), (1, 9)]:
            exhaustive.find_breaking_fault_set(graph, source, target, 3.0, 2, "vertex")
            bnb.find_breaking_fault_set(graph, source, target, 3.0, 2, "vertex")
        assert bnb.stats.distance_queries < exhaustive.stats.distance_queries
