"""Tests for fault models, fault-set enumeration, and adversarial search."""

import math

import pytest

from repro.faults.adversarial import random_fault_trial, stretch_under_faults, worst_case_fault_set
from repro.faults.enumeration import (
    count_fault_sets,
    enumerate_fault_sets,
    fault_sets_for_pair,
    sample_fault_sets,
)
from repro.faults.models import EDGE_FAULTS, VERTEX_FAULTS, get_fault_model
from repro.graph import generators
from repro.graph.core import Graph
from repro.spanners.greedy import greedy_spanner


class TestFaultModels:
    def test_get_fault_model_aliases(self):
        assert get_fault_model("vertex") is VERTEX_FAULTS
        assert get_fault_model("VFT") is VERTEX_FAULTS
        assert get_fault_model("edge") is EDGE_FAULTS
        assert get_fault_model("eft") is EDGE_FAULTS
        assert get_fault_model(VERTEX_FAULTS) is VERTEX_FAULTS

    def test_get_fault_model_unknown(self):
        with pytest.raises(ValueError):
            get_fault_model("bogus")

    def test_vertex_candidates_exclude_endpoints(self, triangle):
        candidates = VERTEX_FAULTS.candidate_elements(triangle, 0, 1)
        assert candidates == [2]

    def test_edge_candidates_are_all_edges(self, triangle):
        candidates = EDGE_FAULTS.candidate_elements(triangle, 0, 1)
        assert len(candidates) == 3

    def test_vertex_apply(self, triangle):
        view = VERTEX_FAULTS.apply(triangle, [2])
        assert not view.has_node(2)
        assert view.number_of_edges() == 1

    def test_edge_apply(self, triangle):
        view = EDGE_FAULTS.apply(triangle, [(0, 1)])
        assert not view.has_edge(0, 1)
        assert view.number_of_edges() == 2

    def test_canonical_forms(self):
        assert VERTEX_FAULTS.canonical([2, 1]) == frozenset({1, 2})
        assert EDGE_FAULTS.canonical([(1, 0), (2, 1)]) == frozenset({(0, 1), (1, 2)})

    def test_element_touches_cycle(self):
        cycle = [0, 1, 2, 3]
        assert VERTEX_FAULTS.element_touches_cycle(2, cycle)
        assert not VERTEX_FAULTS.element_touches_cycle(9, cycle)
        assert EDGE_FAULTS.element_touches_cycle((0, 1), cycle)
        assert EDGE_FAULTS.element_touches_cycle((3, 0), cycle)
        assert not EDGE_FAULTS.element_touches_cycle((0, 2), cycle)

    def test_validate(self, triangle):
        VERTEX_FAULTS.validate(triangle, [0, 1])
        with pytest.raises(ValueError):
            VERTEX_FAULTS.validate(triangle, [7])
        EDGE_FAULTS.validate(triangle, [(0, 1)])
        with pytest.raises(ValueError):
            EDGE_FAULTS.validate(triangle, [(0, 7)])

    def test_all_elements(self, triangle):
        assert set(VERTEX_FAULTS.all_elements(triangle)) == {0, 1, 2}
        assert len(EDGE_FAULTS.all_elements(triangle)) == 3


class TestEnumeration:
    def test_enumerate_sizes(self):
        sets = list(enumerate_fault_sets([1, 2, 3], 2))
        assert () in sets
        assert (1,) in sets and (2, 3) in sets
        assert len(sets) == 1 + 3 + 3

    def test_enumerate_excluding_empty(self):
        sets = list(enumerate_fault_sets([1, 2], 1, include_empty=False))
        assert sets == [(1,), (2,)]

    def test_enumerate_negative_budget(self):
        with pytest.raises(ValueError):
            list(enumerate_fault_sets([1], -1))

    def test_enumerate_budget_beyond_population(self):
        sets = list(enumerate_fault_sets([1, 2], 5))
        assert len(sets) == 4

    def test_count_matches_enumeration(self):
        for num, budget in [(5, 0), (5, 2), (6, 3), (4, 4)]:
            assert count_fault_sets(num, budget) == len(
                list(enumerate_fault_sets(list(range(num)), budget))
            )

    def test_count_excluding_empty(self):
        assert count_fault_sets(4, 2, include_empty=False) == 4 + 6

    def test_sample_fault_sets_exact_size(self, small_random):
        samples = sample_fault_sets(small_random, "vertex", 3, 10, rng=0)
        assert len(samples) == 10
        assert all(len(sample) == 3 for sample in samples)

    def test_sample_fault_sets_variable_size(self, small_random):
        samples = sample_fault_sets(small_random, "edge", 3, 20, rng=0, exact_size=False)
        assert all(len(sample) <= 3 for sample in samples)

    def test_fault_sets_for_pair(self, triangle):
        sets = list(fault_sets_for_pair(triangle, "vertex", 0, 1, 1))
        assert sets == [(), (2,)]

    def test_sample_unique_has_no_duplicates(self, small_random):
        samples = sample_fault_sets(small_random, "vertex", 2, 40, rng=0,
                                    unique=True)
        assert len(samples) == 40
        assert len(set(samples)) == len(samples)
        assert all(len(sample) == 2 for sample in samples)

    def test_sample_unique_is_deterministic_per_seed(self, small_random):
        first = sample_fault_sets(small_random, "edge", 2, 25, rng=7,
                                  unique=True)
        second = sample_fault_sets(small_random, "edge", 2, 25, rng=7,
                                   unique=True)
        assert first == second
        assert len(set(first)) == len(first)
        different = sample_fault_sets(small_random, "edge", 2, 25, rng=8,
                                      unique=True)
        assert different != first

    def test_sample_unique_caps_at_distinct_universe(self, triangle):
        # Only C(3, 2) = 3 distinct vertex pairs exist; asking for more must
        # terminate and return them all exactly once.
        samples = sample_fault_sets(triangle, "vertex", 2, 50, rng=0,
                                    unique=True)
        assert sorted(samples, key=sorted) == [frozenset({0, 1}),
                                               frozenset({0, 2}),
                                               frozenset({1, 2})]

    def test_sample_unique_bounded_retry_budget(self, triangle):
        # A retry budget too small to beat the birthday collisions may return
        # fewer sets, but never duplicates and never an infinite loop.
        samples = sample_fault_sets(triangle, "vertex", 2, 3, rng=0,
                                    unique=True, max_attempts=2)
        assert len(samples) <= 2
        assert len(set(samples)) == len(samples)

    def test_sample_default_stream_unchanged_by_unique_flag(self, small_random):
        # unique=False must keep consuming the rng exactly as before the
        # flag existed (reproducibility of recorded experiments).
        baseline = sample_fault_sets(small_random, "vertex", 3, 10, rng=3)
        again = sample_fault_sets(small_random, "vertex", 3, 10, rng=3,
                                  unique=False)
        assert baseline == again


class TestStretchUnderFaults:
    def test_no_faults_identical_graphs(self, triangle):
        assert stretch_under_faults(triangle, triangle.copy(), "vertex", []) == 1.0

    def test_missing_edge_increases_stretch(self, triangle):
        spanner = triangle.edge_subgraph([(0, 1), (1, 2)])
        assert stretch_under_faults(triangle, spanner, "vertex", []) == pytest.approx(2.0)

    def test_fault_can_disconnect_spanner(self):
        # Original: square; spanner: path through node 1.  Faulting node 1
        # disconnects 0 from 2 in the spanner while the original survives via 3.
        square = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        spanner = square.edge_subgraph([(0, 1), (1, 2), (3, 0)])
        assert stretch_under_faults(square, spanner, "vertex", [1]) == math.inf

    def test_faulted_pairs_ignored_when_original_disconnects(self):
        path = generators.path_graph(3)
        spanner = path.copy()
        # Faulting the middle vertex disconnects the original too: nothing to check.
        assert stretch_under_faults(path, spanner, "vertex", [1]) == 1.0

    def test_edge_fault_model(self, square_with_diagonal):
        spanner = square_with_diagonal.edge_subgraph([(0, 1), (1, 2), (2, 3), (3, 0)])
        value = stretch_under_faults(square_with_diagonal, spanner, "edge", [(0, 1)])
        assert value >= 1.0 and value != math.inf

    def test_restricted_pairs(self, square_with_diagonal):
        spanner = square_with_diagonal.edge_subgraph([(0, 1), (1, 2), (2, 3)])
        full = stretch_under_faults(square_with_diagonal, spanner, "vertex", [])
        only_near = stretch_under_faults(
            square_with_diagonal, spanner, "vertex", [], pairs=[(0, 1)]
        )
        assert only_near <= full


class TestAdversarialSearch:
    def test_worst_case_on_non_ft_spanner(self, medium_random):
        spanner = greedy_spanner(medium_random, 3).spanner
        faults, stretch = worst_case_fault_set(
            medium_random, spanner, "vertex", 1, method="exhaustive"
        )
        assert len(faults) <= 1
        # A 1-fault can typically break a sparse non-FT spanner on a dense graph.
        assert stretch > 1.0

    def test_worst_case_trivial_spanner_is_safe(self, small_random):
        faults, stretch = worst_case_fault_set(
            small_random, small_random.copy(), "vertex", 1, method="exhaustive"
        )
        assert stretch == 1.0

    def test_worst_case_sampled_mode(self, small_random, rng):
        spanner = greedy_spanner(small_random, 3).spanner
        _, stretch = worst_case_fault_set(
            small_random, spanner, "vertex", 2, method="sampled", samples=10, rng=rng
        )
        assert stretch >= 1.0

    def test_worst_case_invalid_method(self, small_random):
        with pytest.raises(ValueError):
            worst_case_fault_set(small_random, small_random.copy(), "vertex", 1,
                                 method="bogus")

    def test_random_fault_trial(self, small_random, rng):
        values = random_fault_trial(small_random, small_random.copy(), "vertex", 2,
                                    trials=5, rng=rng)
        assert len(values) == 5
        assert all(value == 1.0 for value in values)
