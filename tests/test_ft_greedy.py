"""Tests for Algorithm 1, the fault-tolerant greedy spanner."""

import math

import pytest

from repro.bounds.theoretical import corollary2_bound
from repro.graph import generators
from repro.graph.core import Graph, edge_key
from repro.spanners.fault_check import GreedyPathPackingOracle
from repro.spanners.ft_greedy import eft_greedy_spanner, ft_greedy_spanner, vft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner, is_spanner


class TestParameterValidation:
    def test_invalid_stretch(self, triangle):
        with pytest.raises(ValueError):
            ft_greedy_spanner(triangle, 0.0, 1)

    def test_negative_faults(self, triangle):
        with pytest.raises(ValueError):
            ft_greedy_spanner(triangle, 3, -1)

    def test_unknown_fault_model(self, triangle):
        with pytest.raises(ValueError):
            ft_greedy_spanner(triangle, 3, 1, fault_model="bogus")

    def test_unknown_oracle(self, triangle):
        with pytest.raises(ValueError):
            ft_greedy_spanner(triangle, 3, 1, oracle="bogus")


class TestZeroFaultEquivalence:
    """f = 0 must reproduce the classic greedy spanner exactly."""

    @pytest.mark.parametrize("stretch", [1, 2, 3, 5])
    def test_matches_greedy_unweighted(self, medium_random, stretch):
        plain = greedy_spanner(medium_random, stretch)
        ft = ft_greedy_spanner(medium_random, stretch, 0)
        assert ft.spanner.same_structure(plain.spanner)

    def test_matches_greedy_weighted(self, small_weighted_random):
        plain = greedy_spanner(small_weighted_random, 3)
        ft = ft_greedy_spanner(small_weighted_random, 3, 0, fault_model="edge")
        assert ft.spanner.same_structure(plain.spanner)


class TestCorrectness:
    """Definition 2, checked exhaustively on small instances."""

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_one_fault_tolerance_exhaustive(self, small_random, fault_model):
        result = ft_greedy_spanner(small_random, 3, 1, fault_model=fault_model)
        report = is_ft_spanner(small_random, result.spanner, 3, 1,
                               fault_model=fault_model, method="exhaustive")
        assert report.ok, report

    def test_two_fault_tolerance_exhaustive(self):
        graph = generators.gnm(12, 40, rng=21, connected=True)
        result = ft_greedy_spanner(graph, 3, 2, fault_model="vertex")
        report = is_ft_spanner(graph, result.spanner, 3, 2,
                               fault_model="vertex", method="exhaustive")
        assert report.ok, report

    def test_weighted_instance_exhaustive(self, small_weighted_random):
        result = ft_greedy_spanner(small_weighted_random, 3, 1, fault_model="vertex")
        report = is_ft_spanner(small_weighted_random, result.spanner, 3, 1,
                               fault_model="vertex", method="exhaustive")
        assert report.ok, report

    def test_edge_faults_weighted_exhaustive(self, small_weighted_random):
        result = ft_greedy_spanner(small_weighted_random, 3, 1, fault_model="edge")
        report = is_ft_spanner(small_weighted_random, result.spanner, 3, 1,
                               fault_model="edge", method="exhaustive")
        assert report.ok, report

    def test_output_is_spanner_without_faults_too(self, medium_random):
        result = ft_greedy_spanner(medium_random, 3, 2)
        assert is_spanner(medium_random, result.spanner, 3)

    def test_output_is_subgraph_with_original_weights(self, small_weighted_random):
        result = ft_greedy_spanner(small_weighted_random, 3, 1)
        assert result.spanner.is_subgraph_of(small_weighted_random)

    def test_all_nodes_present(self, medium_random):
        result = ft_greedy_spanner(medium_random, 3, 1)
        assert set(result.spanner.nodes()) == set(medium_random.nodes())


class TestStructuralProperties:
    def test_sizes_monotone_in_f(self, medium_random):
        sizes = [ft_greedy_spanner(medium_random, 3, f).size for f in range(4)]
        assert sizes == sorted(sizes)

    def test_sizes_decrease_with_stretch(self, medium_random):
        tight = ft_greedy_spanner(medium_random, 2, 1).size
        loose = ft_greedy_spanner(medium_random, 5, 1).size
        assert loose <= tight

    def test_eft_never_larger_than_vft(self, medium_random):
        for f in (1, 2):
            vft = ft_greedy_spanner(medium_random, 3, f, fault_model="vertex")
            eft = ft_greedy_spanner(medium_random, 3, f, fault_model="edge")
            assert eft.size <= vft.size

    def test_size_within_corollary2_shape(self):
        graph = generators.gnm(50, 500, rng=9, connected=True)
        for f in (1, 2):
            result = ft_greedy_spanner(graph, 3, f)
            # Generous constant: the point is the shape, not the constant.
            assert result.size <= 4 * corollary2_bound(50, f, 3)

    def test_cycle_graph_fully_kept_for_edge_faults(self):
        cycle = generators.cycle_graph(8)
        result = ft_greedy_spanner(cycle, 3, 1, fault_model="edge")
        # Faulting any edge makes the cycle a path; every edge is needed.
        assert result.size == 8

    def test_complete_graph_f1_keeps_more_than_f0(self):
        graph = generators.complete_graph(15)
        f0 = ft_greedy_spanner(graph, 3, 0).size
        f1 = ft_greedy_spanner(graph, 3, 1).size
        assert f1 > f0

    def test_deterministic_output(self, medium_random):
        a = ft_greedy_spanner(medium_random, 3, 1)
        b = ft_greedy_spanner(medium_random, 3, 1)
        assert a.spanner.same_structure(b.spanner)


class TestWitnesses:
    def test_witnesses_recorded_for_added_edges(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1)
        assert set(result.witness_fault_sets) == set(
            edge_key(u, v) for u, v, _ in result.spanner.edges()
        )

    def test_witness_sizes_respect_budget(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 2)
        assert all(len(witness) <= 2 for witness in result.witness_fault_sets.values())

    def test_witnesses_exclude_endpoints_for_vertex_faults(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 2, fault_model="vertex")
        for (u, v), witness in result.witness_fault_sets.items():
            assert u not in witness and v not in witness

    def test_witnesses_are_edges_for_edge_faults(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1, fault_model="edge")
        for witness in result.witness_fault_sets.values():
            for element in witness:
                assert isinstance(element, tuple) and len(element) == 2

    def test_record_witnesses_disabled(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1, record_witnesses=False)
        assert result.witness_fault_sets == {}


class TestOracleVariants:
    def test_exhaustive_oracle_matches_default_on_tiny_instance(self):
        graph = generators.gnm(10, 25, rng=17, connected=True)
        default = ft_greedy_spanner(graph, 3, 1)
        exhaustive = ft_greedy_spanner(graph, 3, 1, oracle="exhaustive")
        assert default.spanner.same_structure(exhaustive.spanner)

    def test_heuristic_oracle_produces_plain_spanner(self, medium_random):
        result = ft_greedy_spanner(medium_random, 3, 2, oracle="greedy-path-packing")
        assert is_spanner(medium_random, result.spanner, 3)
        assert result.parameters["oracle_exact"] is False

    def test_heuristic_oracle_never_larger_than_needed(self, medium_random):
        # Not guaranteed smaller in general, but must stay a subgraph of the input.
        result = ft_greedy_spanner(medium_random, 3, 2, oracle=GreedyPathPackingOracle())
        assert result.spanner.is_subgraph_of(medium_random)

    def test_counters_populated(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1)
        assert result.oracle_queries == small_random.number_of_edges()
        assert result.distance_queries >= result.oracle_queries
        assert result.construction_seconds >= 0.0


class TestTieredOracleBuilds:
    """The tiered oracle must build byte-identical spanners: same edges AND
    the same canonical witness fault sets, serially and under the parallel
    driver — screens never change a decision, only skip exact work."""

    @staticmethod
    def _fields(result):
        return (sorted(result.spanner.edges(), key=repr),
                result.witness_fault_sets)

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("max_faults", [1, 2])
    def test_serial_identical_to_exact(self, medium_random, fault_model,
                                       max_faults):
        exact = ft_greedy_spanner(medium_random, 3, max_faults,
                                  fault_model=fault_model)
        tiered = ft_greedy_spanner(medium_random, 3, max_faults,
                                   fault_model=fault_model, oracle="tiered")
        assert self._fields(tiered) == self._fields(exact)
        assert tiered.parameters["oracle_exact"] is True
        assert 0.0 <= tiered.parameters["screen_hit_rate"] <= 1.0
        outcomes = tiered.parameters["screen_outcomes"]
        assert sum(outcomes.values()) == tiered.oracle_queries

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_parallel_identical_to_serial(self, small_weighted_random,
                                          fault_model):
        serial = ft_greedy_spanner(small_weighted_random, 3, 2,
                                   fault_model=fault_model, oracle="tiered")
        pooled = ft_greedy_spanner(small_weighted_random, 3, 2,
                                   fault_model=fault_model, oracle="tiered",
                                   workers=4)
        assert self._fields(pooled) == self._fields(serial)
        assert 0.0 <= pooled.parameters["screen_hit_rate"] <= 1.0

    def test_parallel_counters_reconcile_with_registry(self, small_random):
        """Worker screen outcomes ship home as flat labeled counters; after
        the build the process registry must account one screen decision per
        oracle query — the parallel half of the OracleStats invariant."""
        from repro.obs.metrics import get_registry
        from repro.spanners.fault_check import TieredOracle

        registry = get_registry()
        before = registry.counters(include_sources=True)
        # Hold the oracle: its counters live on a component registry that is
        # attached weakly to the process default and dies with the instance.
        oracle = TieredOracle()
        result = ft_greedy_spanner(small_random, 3, 1, fault_model="vertex",
                                   oracle=oracle, workers=2)
        delta = registry.counters_delta(before, include_sources=True)
        screens = sum(amount for name, amount in delta.items()
                      if name.startswith("oracle.screen{"))
        exact = delta.get("oracle.exact", 0)
        fallthroughs = delta.get('oracle.screen{outcome="fallthrough"}', 0)
        assert screens == delta.get("oracle.queries", 0) == result.oracle_queries
        assert exact == fallthroughs


class TestConvenienceWrappers:
    def test_vft_wrapper(self, small_random):
        assert vft_greedy_spanner(small_random, 3, 1).fault_model == "vertex"

    def test_eft_wrapper(self, small_random):
        assert eft_greedy_spanner(small_random, 3, 1).fault_model == "edge"

    def test_empty_graph(self):
        result = ft_greedy_spanner(Graph(nodes=range(5)), 3, 2)
        assert result.size == 0

    def test_single_edge_graph(self):
        graph = Graph(edges=[(0, 1, 2.0)])
        result = ft_greedy_spanner(graph, 3, 2)
        assert result.size == 1
