"""Tests for connectivity utilities, graph products, I/O, and networkx interop."""

import math

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.components import (
    UnionFind,
    component_of,
    connected_components,
    is_connected,
    largest_component_subgraph,
)
from repro.graph.convert import from_networkx, to_networkx
from repro.graph.core import Graph
from repro.graph.girth import girth
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)
from repro.graph.products import cartesian_product, relabel_product_nodes, strong_product, tensor_product


class TestComponents:
    def test_single_component(self, triangle):
        components = connected_components(triangle)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_multiple_components(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        graph.add_node(4)
        components = connected_components(graph)
        assert len(components) == 3

    def test_is_connected(self, triangle):
        assert is_connected(triangle)
        assert is_connected(Graph())
        assert is_connected(Graph(nodes=[0]))
        disconnected = Graph(edges=[(0, 1)])
        disconnected.add_node(2)
        assert not is_connected(disconnected)

    def test_component_of(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        assert sorted(component_of(graph, 0)) == [0, 1, 2]
        assert sorted(component_of(graph, 4)) == [3, 4]

    def test_largest_component_subgraph(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        largest = largest_component_subgraph(graph)
        assert largest.number_of_nodes() == 3


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(range(5))
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # already connected
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_count(self):
        uf = UnionFind(range(4))
        assert uf.component_count() == 4
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.component_count() == 2

    def test_groups(self):
        uf = UnionFind("abcd")
        uf.union("a", "b")
        groups = sorted(sorted(group) for group in uf.groups())
        assert groups == [["a", "b"], ["c"], ["d"]]

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find(0)

    def test_add_idempotent_and_len(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert len(uf) == 1
        assert 1 in uf


class TestProducts:
    def test_cartesian_product_counts(self):
        path2 = generators.path_graph(2)
        path3 = generators.path_graph(3)
        product = cartesian_product(path2, path3)
        # |V| = 2*3, |E| = 2*|E(P3)| + 3*|E(P2)| = 2*2 + 3*1 = 7
        assert product.number_of_nodes() == 6
        assert product.number_of_edges() == 7

    def test_cartesian_product_is_grid(self):
        product = cartesian_product(generators.path_graph(3), generators.path_graph(4))
        grid = generators.grid_2d(3, 4)
        assert product.number_of_edges() == grid.number_of_edges()

    def test_cartesian_product_weight_rules(self):
        weighted = Graph(edges=[(0, 1, 2.0)])
        other = Graph(edges=[("a", "b", 3.0)])
        copied = cartesian_product(weighted, other, weight_rule="copy")
        assert copied.weight((0, "a"), (1, "a")) == 2.0
        assert copied.weight((0, "a"), (0, "b")) == 3.0
        unit = cartesian_product(weighted, other, weight_rule="unit")
        assert all(w == 1.0 for _, _, w in unit.edges())

    def test_cartesian_product_invalid_rule(self):
        with pytest.raises(ValueError):
            cartesian_product(Graph(), Graph(), weight_rule="bogus")

    def test_tensor_product_counts(self):
        k2 = generators.complete_graph(2)
        k3 = generators.complete_graph(3)
        product = tensor_product(k2, k3)
        # Tensor of K2 x K3 = K_{3,3}: 6 nodes, 2*|E(K2)|*|E(K3)|... here 6 edges? K_{3,3} has 9.
        assert product.number_of_nodes() == 6
        assert product.number_of_edges() == 2 * 1 * 3

    def test_strong_product_contains_cartesian(self):
        path2 = generators.path_graph(2)
        path3 = generators.path_graph(3)
        cart = cartesian_product(path2, path3)
        strong = strong_product(path2, path3)
        assert cart.number_of_edges() <= strong.number_of_edges()
        for u, v, _ in cart.edges():
            assert strong.has_edge(u, v)

    def test_product_girth_preserved_by_cartesian_with_k2(self):
        petersen = generators.petersen_graph()
        prism = cartesian_product(petersen, generators.complete_graph(2))
        assert girth(prism) == 4  # squares appear across the two copies

    def test_relabel_product_nodes(self):
        product = cartesian_product(generators.path_graph(2), generators.path_graph(2))
        relabeled, mapping = relabel_product_nodes(product)
        assert set(relabeled.nodes()) == {0, 1, 2, 3}
        assert len(mapping) == 4


class TestIO:
    def test_edge_list_round_trip(self, tmp_path, small_weighted_random):
        path = tmp_path / "graph.txt"
        write_edge_list(small_weighted_random, path)
        loaded = read_edge_list(path)
        assert loaded.same_structure(small_weighted_random, tol=1e-9)

    def test_edge_list_two_token_lines(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n# comment\n\n")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 2
        assert graph.weight(0, 1) == 1.0

    def test_edge_list_bad_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(Exception):
            read_edge_list(path)

    def test_edge_list_string_labels(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alpha beta 2.0\n")
        graph = read_edge_list(path)
        assert graph.has_edge("alpha", "beta")

    def test_json_round_trip(self, tmp_path, small_weighted_random):
        path = tmp_path / "graph.json"
        write_json(small_weighted_random, path)
        loaded = read_json(path)
        assert loaded.same_structure(small_weighted_random, tol=1e-9)

    def test_json_preserves_isolated_nodes(self, tmp_path):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        path = tmp_path / "isolated.json"
        write_json(graph, path)
        assert read_json(path).number_of_nodes() == 3

    def test_json_restores_tuple_labels(self):
        graph = Graph(edges=[((0, 1), (0, 2))])
        document = graph_to_json(graph)
        restored = graph_from_json(document)
        assert restored.has_edge((0, 1), (0, 2))

    def test_json_rejects_foreign_documents(self):
        with pytest.raises(Exception):
            graph_from_json({"format": "something-else"})

    def test_json_metadata_filtered(self):
        graph = Graph(edges=[(0, 1)])
        graph.metadata["ok"] = {"a": 1}
        graph.metadata["bad"] = object()
        document = graph_to_json(graph)
        assert "ok" in document["metadata"]
        assert "bad" not in document["metadata"]


class TestNetworkxInterop:
    def test_round_trip(self, small_weighted_random):
        nx_graph = to_networkx(small_weighted_random)
        back = from_networkx(nx_graph)
        assert back.same_structure(small_weighted_random, tol=1e-9)

    def test_to_networkx_weights(self, weighted_path):
        nx_graph = to_networkx(weighted_path)
        assert nx_graph[0][1]["weight"] == 1.0
        assert nx_graph[3][4]["weight"] == 4.0

    def test_from_networkx_defaults(self):
        nx_graph = nx.path_graph(4)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 3
        assert graph.weight(0, 1) == 1.0

    def test_from_networkx_drops_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1

    def test_from_networkx_directed_symmetrised(self):
        digraph = nx.DiGraph()
        digraph.add_edge(0, 1, weight=5.0)
        digraph.add_edge(1, 0, weight=3.0)
        graph = from_networkx(digraph)
        assert graph.number_of_edges() == 1
        assert graph.weight(0, 1) == 3.0

    def test_custom_weight_attribute(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("a", "b", cost=7.0)
        graph = from_networkx(nx_graph, weight_attribute="cost")
        assert graph.weight("a", "b") == 7.0
