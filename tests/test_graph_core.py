"""Unit tests for the core Graph type."""

import pytest

from repro.graph.core import Graph, GraphError, density, edge_key, is_unit_weighted


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_nodes_only(self):
        graph = Graph(nodes=[3, 1, 2])
        assert graph.number_of_nodes() == 3
        assert list(graph.nodes()) == [3, 1, 2]  # insertion order preserved

    def test_edges_with_default_weight(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.number_of_edges() == 2
        assert graph.weight(0, 1) == 1.0

    def test_edges_with_explicit_weight(self):
        graph = Graph(edges=[(0, 1, 2.5)])
        assert graph.weight(0, 1) == 2.5
        assert graph.weight(1, 0) == 2.5

    def test_bad_edge_tuple_length(self):
        with pytest.raises(GraphError):
            Graph(edges=[(0, 1, 2.0, 3.0)])

    def test_name_and_metadata(self):
        graph = Graph(name="demo")
        graph.metadata["family"] = "test"
        assert graph.name == "demo"
        assert graph.copy().metadata["family"] == "test"


class TestNodeOperations:
    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(5)
        graph.add_node(5)
        assert graph.number_of_nodes() == 1

    def test_add_nodes_bulk(self):
        graph = Graph()
        graph.add_nodes(range(10))
        assert graph.number_of_nodes() == 10

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        graph.remove_node(1)
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        assert graph.has_edge(0, 2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_node(0)

    def test_has_node_and_contains(self):
        graph = Graph(nodes=[1])
        assert graph.has_node(1)
        assert 1 in graph
        assert 2 not in graph

    def test_string_node_labels(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        assert graph.has_edge("a", "b")
        assert graph.degree("b") == 2

    def test_tuple_node_labels(self):
        graph = Graph(edges=[((0, 1), (0, 2))])
        assert graph.has_edge((0, 1), (0, 2))


class TestEdgeOperations:
    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(0, 1, 2.0)
        assert graph.has_node(0) and graph.has_node(1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph().add_edge(0, 0)

    def test_nonpositive_weight_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, -1.0)

    def test_nan_and_inf_weight_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, float("nan"))
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, float("inf"))

    def test_readd_edge_overwrites_weight(self):
        graph = Graph(edges=[(0, 1, 1.0)])
        graph.add_edge(0, 1, 5.0)
        assert graph.number_of_edges() == 1
        assert graph.weight(0, 1) == 5.0

    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_node(0)

    def test_remove_missing_edge_raises(self):
        with pytest.raises(GraphError):
            Graph(nodes=[0, 1]).remove_edge(0, 1)

    def test_weight_of_missing_edge_raises(self):
        with pytest.raises(GraphError):
            Graph(nodes=[0, 1]).weight(0, 1)

    def test_edges_reported_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        keys = {edge_key(u, v) for u, v, _ in edges}
        assert keys == {(0, 1), (1, 2), (0, 2)}

    def test_edge_keys(self, triangle):
        assert set(triangle.edge_keys()) == {(0, 1), (1, 2), (0, 2)}

    def test_total_weight(self):
        graph = Graph(edges=[(0, 1, 2.0), (1, 2, 3.0)])
        assert graph.total_weight() == pytest.approx(5.0)


class TestDegreesAndAdjacency:
    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_degree_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().degree(0)

    def test_neighbors(self, triangle):
        assert set(triangle.neighbors(0)) == {1, 2}

    def test_adjacency_mapping(self, square_with_diagonal):
        adjacency = square_with_diagonal.adjacency(0)
        assert adjacency[2] == 1.5
        assert set(adjacency) == {1, 3, 2}

    def test_max_min_average_degree(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.max_degree() == 2
        assert graph.min_degree() == 1
        assert graph.average_degree() == pytest.approx(4 / 3)

    def test_degree_statistics_on_empty_graph(self):
        graph = Graph()
        assert graph.max_degree() == 0
        assert graph.min_degree() == 0
        assert graph.average_degree() == 0.0


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_subgraph_induces_edges(self, square_with_diagonal):
        sub = square_with_diagonal.subgraph([0, 1, 2])
        assert sub.number_of_nodes() == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2) and sub.has_edge(0, 2)
        assert not sub.has_edge(2, 3)

    def test_subgraph_ignores_unknown_nodes(self, triangle):
        sub = triangle.subgraph([0, 1, 99])
        assert sub.number_of_nodes() == 2

    def test_edge_subgraph_keeps_all_nodes(self, square_with_diagonal):
        sub = square_with_diagonal.edge_subgraph([(0, 1)])
        assert sub.number_of_nodes() == 4
        assert sub.number_of_edges() == 1
        assert sub.weight(0, 1) == 1.0

    def test_spanning_subgraph_is_empty(self, triangle):
        empty = triangle.spanning_subgraph()
        assert empty.number_of_nodes() == 3
        assert empty.number_of_edges() == 0

    def test_relabeled(self, triangle):
        renamed = triangle.relabeled({0: "a", 1: "b", 2: "c"})
        assert renamed.has_edge("a", "b")
        assert renamed.number_of_edges() == 3

    def test_relabeled_requires_injective_mapping(self, triangle):
        with pytest.raises(GraphError):
            triangle.relabeled({0: "x", 1: "x"})

    def test_with_integer_labels(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        relabeled, mapping = graph.with_integer_labels()
        assert set(relabeled.nodes()) == {0, 1, 2}
        assert relabeled.has_edge(mapping["a"], mapping["b"])


class TestComparison:
    def test_same_structure(self, triangle):
        assert triangle.same_structure(triangle.copy())

    def test_same_structure_detects_weight_difference(self):
        a = Graph(edges=[(0, 1, 1.0)])
        b = Graph(edges=[(0, 1, 2.0)])
        assert not a.same_structure(b)

    def test_is_subgraph_of(self, square_with_diagonal):
        sub = square_with_diagonal.edge_subgraph([(0, 1), (1, 2)])
        assert sub.is_subgraph_of(square_with_diagonal)
        assert not square_with_diagonal.is_subgraph_of(sub)

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_repr_mentions_counts(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)


class TestModuleHelpers:
    def test_edge_key_orders_endpoints(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key("b", "a") == ("a", "b")

    def test_edge_key_mixed_types_is_deterministic(self):
        assert edge_key((1, 0), "x") == edge_key("x", (1, 0))

    def test_density(self, triangle):
        assert density(triangle) == pytest.approx(1.0)
        assert density(Graph(nodes=[0])) == 0.0

    def test_is_unit_weighted(self, triangle, weighted_path):
        assert is_unit_weighted(triangle)
        assert not is_unit_weighted(weighted_path)
