"""Unit tests for the graph generators."""

import math

import pytest

from repro.graph import generators
from repro.graph.components import is_connected
from repro.graph.core import is_unit_weighted
from repro.graph.girth import girth


class TestRandomFamilies:
    def test_gnp_bounds(self):
        graph = generators.gnp(20, 0.3, rng=0)
        assert graph.number_of_nodes() == 20
        assert 0 <= graph.number_of_edges() <= 190

    def test_gnp_extremes(self):
        assert generators.gnp(10, 0.0, rng=0).number_of_edges() == 0
        assert generators.gnp(10, 1.0, rng=0).number_of_edges() == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            generators.gnp(5, 1.5)

    def test_gnp_reproducible(self):
        a = generators.gnp(15, 0.4, rng=42)
        b = generators.gnp(15, 0.4, rng=42)
        assert a.same_structure(b)

    def test_gnm_exact_edge_count(self):
        graph = generators.gnm(25, 60, rng=1)
        assert graph.number_of_edges() == 60

    def test_gnm_connected_flag(self):
        graph = generators.gnm(30, 35, rng=2, connected=True)
        assert is_connected(graph)
        assert graph.number_of_edges() == 35

    def test_gnm_connected_needs_enough_edges(self):
        with pytest.raises(ValueError):
            generators.gnm(10, 5, connected=True)

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            generators.gnm(5, 11)

    def test_gnm_weighted(self):
        graph = generators.gnm(20, 40, rng=3, weighted=True, weight_range=(2.0, 4.0))
        assert all(2.0 <= w <= 4.0 for _, _, w in graph.edges())

    def test_gnm_dense_sampling_path(self):
        # Request most of the possible edges to exercise the pool-sampling branch.
        graph = generators.gnm(10, 40, rng=4)
        assert graph.number_of_edges() == 40

    def test_random_weighted_gnm(self):
        graph = generators.random_weighted_gnm(20, 50, rng=5)
        assert is_connected(graph)
        assert not is_unit_weighted(graph)

    def test_random_geometric(self):
        graph = generators.random_geometric(40, 0.3, rng=6)
        positions = graph.metadata["positions"]
        assert len(positions) == 40
        for u, v, w in graph.edges():
            xu, yu = positions[u]
            xv, yv = positions[v]
            assert w == pytest.approx(math.hypot(xu - xv, yu - yv))
            assert w <= 0.3 + 1e-12

    def test_random_geometric_unweighted(self):
        graph = generators.random_geometric(30, 0.4, rng=7, weighted=False)
        assert is_unit_weighted(graph)

    def test_random_regular_like(self):
        graph = generators.random_regular_like(20, 4, rng=8)
        assert graph.number_of_nodes() == 20
        assert graph.max_degree() <= 4

    def test_random_regular_like_parity_check(self):
        with pytest.raises(ValueError):
            generators.random_regular_like(5, 3)

    def test_ensure_connected_gnm(self):
        graph = generators.ensure_connected_gnm(20, 30, rng=9)
        assert is_connected(graph)


class TestStructuredFamilies:
    def test_path_graph(self):
        graph = generators.path_graph(5)
        assert graph.number_of_edges() == 4
        assert girth(graph) == math.inf

    def test_cycle_graph(self):
        graph = generators.cycle_graph(6)
        assert graph.number_of_edges() == 6
        assert girth(graph) == 6

    def test_cycle_graph_too_small(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.number_of_edges() == 15
        assert graph.min_degree() == 5

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite(3, 4)
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 12
        assert graph.degree(0) == 4
        assert graph.degree(3) == 3

    def test_star_graph(self):
        graph = generators.star_graph(6)
        assert graph.degree(0) == 6
        assert graph.number_of_edges() == 6

    def test_grid_2d(self):
        graph = generators.grid_2d(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_connected(graph)

    def test_grid_2d_diagonal(self):
        plain = generators.grid_2d(3, 3)
        diag = generators.grid_2d(3, 3, diagonal=True)
        assert diag.number_of_edges() == plain.number_of_edges() + 4

    def test_hypercube(self):
        graph = generators.hypercube(4)
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 32
        assert all(graph.degree(node) == 4 for node in graph.nodes())
        assert girth(graph) == 4

    def test_hypercube_dimension_zero(self):
        graph = generators.hypercube(0)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0

    def test_barbell(self):
        graph = generators.barbell_graph(4, 3)
        assert is_connected(graph)
        assert graph.number_of_nodes() == 2 * 4 + 2

    def test_connected_caveman(self):
        graph = generators.connected_caveman(4, 5)
        assert graph.number_of_nodes() == 20
        assert is_connected(graph)

    def test_connected_caveman_validation(self):
        with pytest.raises(ValueError):
            generators.connected_caveman(1, 5)


class TestHighGirthFamilies:
    def test_petersen_counts(self):
        graph = generators.petersen_graph()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 15
        assert all(graph.degree(node) == 3 for node in graph.nodes())

    def test_heawood_counts(self):
        graph = generators.heawood_graph()
        assert graph.number_of_nodes() == 14
        assert graph.number_of_edges() == 21
        assert all(graph.degree(node) == 3 for node in graph.nodes())

    def test_mcgee_counts(self):
        graph = generators.mcgee_graph()
        assert graph.number_of_nodes() == 24
        assert graph.number_of_edges() == 36

    def test_tutte_coxeter_counts(self):
        graph = generators.tutte_coxeter_graph()
        assert graph.number_of_nodes() == 30
        assert graph.number_of_edges() == 45

    def test_cage_lookup(self):
        assert generators.cage(5).name == "petersen"
        assert generators.cage(8).name == "tutte_coxeter"
        with pytest.raises(ValueError):
            generators.cage(9)

    def test_projective_plane_incidence(self):
        graph = generators.incidence_projective_plane(2)
        # PG(2,2) has 7 points and 7 lines, 3 points per line.
        assert graph.number_of_nodes() == 14
        assert graph.number_of_edges() == 21
        assert girth(graph) == 6

    def test_projective_plane_q3(self):
        graph = generators.incidence_projective_plane(3)
        assert graph.number_of_nodes() == 2 * 13
        assert graph.number_of_edges() == 4 * 13
        assert girth(graph) == 6

    def test_projective_plane_requires_prime(self):
        with pytest.raises(ValueError):
            generators.incidence_projective_plane(4)

    @pytest.mark.parametrize("target", [3, 4, 5])
    def test_high_girth_greedy(self, target):
        graph = generators.high_girth_greedy(20, target, rng=1)
        assert girth(graph) > target
        assert graph.number_of_edges() > 0

    def test_high_girth_greedy_validation(self):
        with pytest.raises(ValueError):
            generators.high_girth_greedy(10, 2)

    def test_metadata_recorded(self):
        graph = generators.gnm(10, 20, rng=0)
        assert graph.metadata["family"] == "gnm"
        assert graph.metadata["n"] == 10
