"""Unit tests for girth computation and short-cycle enumeration."""

import math

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.convert import to_networkx
from repro.graph.core import Graph
from repro.graph.girth import (
    cycle_edges,
    enumerate_short_cycles,
    girth,
    girth_exceeds,
    has_cycle_at_most,
    shortest_cycle_through_edge,
)


class TestGirthBasics:
    def test_forest_has_infinite_girth(self):
        tree = generators.path_graph(6)
        assert girth(tree) == math.inf

    def test_triangle(self, triangle):
        assert girth(triangle) == 3

    def test_cycle_graph(self):
        assert girth(generators.cycle_graph(7)) == 7

    def test_square_with_diagonal(self, square_with_diagonal):
        assert girth(square_with_diagonal) == 3

    def test_complete_graph(self):
        assert girth(generators.complete_graph(5)) == 3

    def test_complete_bipartite(self):
        assert girth(generators.complete_bipartite(3, 3)) == 4

    def test_petersen_girth_five(self, petersen):
        assert girth(petersen) == 5

    def test_heawood_girth_six(self):
        assert girth(generators.heawood_graph()) == 6

    def test_mcgee_girth_seven(self):
        assert girth(generators.mcgee_graph()) == 7

    def test_tutte_coxeter_girth_eight(self):
        assert girth(generators.tutte_coxeter_graph()) == 8

    def test_girth_ignores_weights(self):
        graph = Graph(edges=[(0, 1, 10.0), (1, 2, 0.1), (2, 0, 5.0)])
        assert girth(graph) == 3

    def test_cutoff_returns_inf_above_threshold(self, petersen):
        assert girth(petersen, cutoff=4) == math.inf
        assert girth(petersen, cutoff=5) == 5

    def test_empty_graph(self):
        assert girth(Graph()) == math.inf


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx_girth(self, seed):
        graph = generators.gnm(14, 24, rng=seed)
        ours = girth(graph)
        theirs = nx.girth(to_networkx(graph))
        expected = math.inf if theirs == math.inf else float(theirs)
        assert ours == expected


class TestCycleQueries:
    def test_has_cycle_at_most(self, petersen):
        assert not has_cycle_at_most(petersen, 4)
        assert has_cycle_at_most(petersen, 5)
        assert has_cycle_at_most(petersen, 10)

    def test_has_cycle_at_most_small_k(self, triangle):
        assert not has_cycle_at_most(triangle, 2)

    def test_girth_exceeds(self, petersen):
        assert girth_exceeds(petersen, 4)
        assert not girth_exceeds(petersen, 5)

    def test_shortest_cycle_through_edge(self, square_with_diagonal):
        length, cycle = shortest_cycle_through_edge(square_with_diagonal, 0, 1)
        assert length == 3
        assert cycle[0] == 0 and cycle[-1] == 1
        assert len(cycle) == 3

    def test_shortest_cycle_through_bridge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        length, cycle = shortest_cycle_through_edge(graph, 0, 1)
        assert length == math.inf
        assert cycle == []

    def test_shortest_cycle_missing_edge_raises(self, triangle):
        with pytest.raises(ValueError):
            shortest_cycle_through_edge(triangle, 0, 5)

    def test_shortest_cycle_respects_cutoff(self, petersen):
        length, cycle = shortest_cycle_through_edge(petersen, 0, 1, cutoff=4)
        assert length == math.inf and cycle == []


class TestEnumeration:
    def test_triangle_enumeration(self, triangle):
        cycles = enumerate_short_cycles(triangle, 3)
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2}

    def test_square_with_diagonal_enumeration(self, square_with_diagonal):
        cycles = enumerate_short_cycles(square_with_diagonal, 4)
        # Two triangles (0,1,2) and (0,2,3) and the 4-cycle (0,1,2,3).
        assert len(cycles) == 3
        sizes = sorted(len(c) for c in cycles)
        assert sizes == [3, 3, 4]

    def test_enumeration_respects_bound(self, square_with_diagonal):
        cycles = enumerate_short_cycles(square_with_diagonal, 3)
        assert all(len(c) == 3 for c in cycles)
        assert len(cycles) == 2

    def test_enumeration_on_acyclic_graph(self):
        assert enumerate_short_cycles(generators.path_graph(5), 6) == []

    def test_enumeration_bound_below_three(self, triangle):
        assert enumerate_short_cycles(triangle, 2) == []

    def test_enumeration_counts_match_networkx(self):
        graph = generators.gnm(10, 20, rng=5)
        ours = enumerate_short_cycles(graph, 5)
        nx_graph = to_networkx(graph)
        theirs = [c for c in nx.simple_cycles(nx_graph, length_bound=5)]
        assert len(ours) == len(theirs)

    def test_cycle_edges_helper(self):
        edges = cycle_edges([0, 1, 2])
        assert set(edges) == {(0, 1), (1, 2), (0, 2)}

    def test_enumerated_cycles_are_valid(self, petersen):
        for cycle in enumerate_short_cycles(petersen, 6):
            assert len(cycle) >= 5  # girth of Petersen
            for u, v in cycle_edges(cycle):
                assert petersen.has_edge(u, v)
            assert len(set(cycle)) == len(cycle)
