"""Unit tests for exclusion views (the ``H \\ F`` primitive)."""

import pytest

from repro.graph.core import Graph, GraphError
from repro.graph.views import ExclusionView, graph_minus, induced_subgraph


class TestNodeExclusion:
    def test_excluded_node_invisible(self, triangle):
        view = graph_minus(triangle, nodes=[1])
        assert not view.has_node(1)
        assert view.number_of_nodes() == 2
        assert set(view.nodes()) == {0, 2}

    def test_excluded_node_hides_incident_edges(self, triangle):
        view = graph_minus(triangle, nodes=[1])
        assert not view.has_edge(0, 1)
        assert view.has_edge(0, 2)
        assert view.number_of_edges() == 1

    def test_neighbors_of_excluded_node_raise(self, triangle):
        view = graph_minus(triangle, nodes=[1])
        with pytest.raises(GraphError):
            list(view.neighbors(1))

    def test_neighbors_filtered(self, triangle):
        view = graph_minus(triangle, nodes=[1])
        assert list(view.neighbors(0)) == [2]

    def test_degree_counts_visible_edges_only(self, square_with_diagonal):
        view = graph_minus(square_with_diagonal, nodes=[3])
        assert view.degree(0) == 2  # edges to 1 and 2 survive, edge to 3 hidden


class TestEdgeExclusion:
    def test_excluded_edge_invisible_both_orientations(self, triangle):
        for orientation in [(0, 1), (1, 0)]:
            view = graph_minus(triangle, edges=[orientation])
            assert not view.has_edge(0, 1)
            assert not view.has_edge(1, 0)
            assert view.number_of_edges() == 2

    def test_excluded_edge_keeps_endpoints(self, triangle):
        view = graph_minus(triangle, edges=[(0, 1)])
        assert view.has_node(0) and view.has_node(1)

    def test_weight_of_excluded_edge_raises(self, triangle):
        view = graph_minus(triangle, edges=[(0, 1)])
        with pytest.raises(GraphError):
            view.weight(0, 1)

    def test_adjacency_filters_excluded_edges(self, square_with_diagonal):
        view = graph_minus(square_with_diagonal, edges=[(0, 2)])
        assert 2 not in view.adjacency(0)
        assert set(view.adjacency(0)) == {1, 3}

    def test_adjacency_without_exclusions_is_passthrough(self, triangle):
        view = ExclusionView(triangle)
        assert view.adjacency(0) is triangle.adjacency(0)


class TestCombinedAndNested:
    def test_combined_exclusions(self, square_with_diagonal):
        view = graph_minus(square_with_diagonal, nodes=[3], edges=[(0, 2)])
        assert view.number_of_edges() == 2  # (0,1) and (1,2) remain
        assert set(view.nodes()) == {0, 1, 2}

    def test_nested_views(self, square_with_diagonal):
        inner = graph_minus(square_with_diagonal, nodes=[3])
        outer = graph_minus(inner, edges=[(0, 2)])
        assert not outer.has_edge(0, 2)
        assert not outer.has_node(3)
        assert outer.number_of_edges() == 2

    def test_view_is_live(self, triangle):
        view = graph_minus(triangle, nodes=[2])
        triangle.add_edge(0, 3)
        assert view.has_edge(0, 3)

    def test_empty_exclusions_match_graph(self, small_random):
        view = ExclusionView(small_random)
        assert view.number_of_nodes() == small_random.number_of_nodes()
        assert view.number_of_edges() == small_random.number_of_edges()

    def test_contains_and_iter(self, triangle):
        view = graph_minus(triangle, nodes=[2])
        assert 0 in view and 2 not in view
        assert sorted(view) == [0, 1]

    def test_excluded_sets_exposed(self, triangle):
        view = graph_minus(triangle, nodes=[2], edges=[(0, 1)])
        assert view.excluded_nodes == frozenset({2})
        assert view.excluded_edges == frozenset({(0, 1)})


class TestMaterialize:
    def test_materialize_copies_visible_part(self, square_with_diagonal):
        view = graph_minus(square_with_diagonal, nodes=[3])
        solid = view.materialize(name="pruned")
        assert isinstance(solid, Graph)
        assert solid.name == "pruned"
        assert solid.number_of_nodes() == 3
        assert solid.number_of_edges() == 3
        # Mutating the materialised copy does not touch the original.
        solid.remove_edge(0, 1)
        assert square_with_diagonal.has_edge(0, 1)

    def test_materialize_preserves_weights(self, square_with_diagonal):
        solid = graph_minus(square_with_diagonal, nodes=[]).materialize()
        assert solid.weight(0, 2) == 1.5

    def test_induced_subgraph_helper(self, square_with_diagonal):
        sub = induced_subgraph(square_with_diagonal, [0, 1, 2])
        assert sub.number_of_edges() == 3
