"""Tests for the classic (non-fault-tolerant) greedy spanner."""

import math

import pytest

from repro.bounds.moore import moore_bound
from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.girth import girth
from repro.spanners.greedy import greedy_spanner, sorted_edges
from repro.spanners.verify import is_spanner, stretch_of


class TestSortedEdges:
    def test_sorted_by_weight(self, weighted_path):
        weights = [w for _, _, w in sorted_edges(weighted_path)]
        assert weights == sorted(weights)

    def test_deterministic_tie_break(self, small_random):
        first = [tuple(edge) for edge in sorted_edges(small_random)]
        second = [tuple(edge) for edge in sorted_edges(small_random)]
        assert first == second


class TestGreedySpanner:
    def test_invalid_stretch(self, triangle):
        with pytest.raises(ValueError):
            greedy_spanner(triangle, 0.5)

    def test_stretch_one_keeps_everything_on_unit_graphs(self, small_random):
        result = greedy_spanner(small_random, 1)
        assert result.size == small_random.number_of_edges()

    def test_triangle_stretch_two_drops_an_edge(self, triangle):
        result = greedy_spanner(triangle, 2)
        assert result.size == 2
        assert is_spanner(triangle, result.spanner, 2)

    def test_spanner_property_holds(self, medium_random):
        for stretch in (3, 5):
            result = greedy_spanner(medium_random, stretch)
            assert is_spanner(medium_random, result.spanner, stretch)

    def test_spanner_property_on_weighted_graphs(self, small_weighted_random):
        result = greedy_spanner(small_weighted_random, 3)
        assert is_spanner(small_weighted_random, result.spanner, 3)

    def test_output_is_subgraph(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        assert result.spanner.is_subgraph_of(medium_random)

    def test_spanner_preserves_connectivity(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        assert stretch_of(medium_random, result.spanner) != math.inf

    def test_girth_guarantee(self, medium_random):
        # The greedy (2k-1)-spanner has girth > 2k: for stretch 3, girth > 4.
        result = greedy_spanner(medium_random, 3)
        assert girth(result.spanner, cutoff=4) == math.inf

    def test_girth_guarantee_stretch_five(self, medium_random):
        result = greedy_spanner(medium_random, 5)
        assert girth(result.spanner, cutoff=6) == math.inf

    def test_size_respects_moore_bound_shape(self):
        graph = generators.gnm(60, 600, rng=0, connected=True)
        result = greedy_spanner(graph, 3)
        # b(n, 4) for n=60 is below the Moore-form n^{3/2} up to a small constant.
        assert result.size <= 3 * moore_bound(60, 4)

    def test_complete_graph_stretch3_is_sparse(self):
        graph = generators.complete_graph(25)
        result = greedy_spanner(graph, 3)
        assert result.size < graph.number_of_edges() / 2

    def test_result_counters(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        assert result.edges_considered == medium_random.number_of_edges()
        assert result.edges_added == result.size
        assert result.distance_queries == result.edges_considered
        assert result.construction_seconds >= 0.0
        assert result.algorithm == "greedy"
        assert result.max_faults == 0

    def test_tree_input_returned_whole(self):
        tree = generators.path_graph(10)
        result = greedy_spanner(tree, 3)
        assert result.size == 9

    def test_disconnected_input(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        result = greedy_spanner(graph, 3)
        assert result.size == 2

    def test_weighted_stretch_respects_budget(self):
        # Edge (0,2) of weight 1.5 has an alternative 2-path of weight 2.
        graph = Graph(edges=[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
        # At stretch 3 the budget is 4.5 >= 2, so the edge is redundant.
        loose = greedy_spanner(graph, 3)
        assert not loose.spanner.has_edge(0, 2)
        # At stretch 1.2 the budget is 1.8 < 2, so the edge must be kept.
        tight = greedy_spanner(graph, 1.2)
        assert tight.spanner.has_edge(0, 2)

    def test_metadata_untouched(self, medium_random):
        before = dict(medium_random.metadata)
        greedy_spanner(medium_random, 3)
        assert medium_random.metadata == before
