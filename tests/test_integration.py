"""Integration tests: end-to-end replays of the paper's storyline.

Each test chains several subsystems the way a user (or the benchmark harness)
would: build → verify → analyse → compare against the theory.
"""

import math

import pytest

import repro
from repro import (
    bdpw_lower_bound_instance,
    corollary2_bound,
    extract_blocking_set,
    ft_greedy_spanner,
    generators,
    greedy_spanner,
    is_blocking_set,
    is_ft_spanner,
    lemma4_subsample,
    peeling_union_spanner,
    sampling_union_spanner,
    stretch_of,
    theorem1_bound,
)
from repro.graph.girth import girth
from repro.spanners.blocking import theorem1_certificate
from repro.spanners.base import SpannerResult


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_module_docstring(self):
        graph = generators.gnm(40, 160, rng=0, connected=True)
        result = ft_greedy_spanner(graph, stretch=3, max_faults=1)
        assert result.size < graph.number_of_edges()
        assert bool(is_ft_spanner(graph, result.spanner, stretch=3, max_faults=1,
                                  method="sampled", samples=25, rng=0))

    def test_spanner_result_summary(self):
        graph = generators.gnm(20, 60, rng=1, connected=True)
        result = ft_greedy_spanner(graph, 3, 1)
        assert isinstance(result, SpannerResult)
        summary = result.summary()
        assert summary["n"] == 20
        assert summary["spanner_edges"] == result.size
        assert 0 < result.compression_ratio <= 1
        assert 0 < result.weight_ratio <= 1
        assert "ft-greedy" in repr(result)


class TestTheorem1EndToEnd:
    """Replay the whole proof pipeline on a concrete instance."""

    def test_proof_pipeline(self):
        graph = generators.gnm(36, 300, rng=4, connected=True)
        stretch, faults = 3, 2
        result = ft_greedy_spanner(graph, stretch, faults)

        # The output is an f-VFT k-spanner (sampled check on this size).
        assert is_ft_spanner(graph, result.spanner, stretch, faults,
                             method="sampled", samples=40, rng=0).ok

        # Lemma 3: blocking set of size <= f * |E(H)| that blocks all (k+1)-cycles.
        blocking = extract_blocking_set(result)
        assert blocking.size <= faults * result.size
        assert is_blocking_set(result.spanner, blocking)

        # Lemma 4: subsample has girth > k+1 on ceil(n/2f) nodes.
        outcome = lemma4_subsample(result.spanner, blocking, faults, rng=0, trials=10)
        assert outcome.girth_ok
        assert outcome.sampled_nodes == math.ceil(36 / (2 * faults))

        # Theorem 1 / Corollary 2 size shape (generous constant).
        assert result.size <= 4 * theorem1_bound(36, faults, stretch)
        assert result.size <= 4 * corollary2_bound(36, faults, stretch)

        # The whole certificate in one call.
        certificate = theorem1_certificate(result, rng=1, trials=5)
        assert certificate["blocking_within_bound"] and certificate["girth_ok"]

    def test_greedy_girth_connection(self):
        # For f = 0 the blocking set is empty and the theorem degenerates to the
        # classic statement: the greedy (2k-1)-spanner has girth > 2k.
        graph = generators.gnm(30, 200, rng=6, connected=True)
        result = greedy_spanner(graph, 3)
        assert girth(result.spanner, cutoff=4) == math.inf


class TestComparativeStory:
    def test_ft_greedy_beats_baselines_on_dense_graph(self):
        graph = generators.gnm(50, 600, rng=8, connected=True)
        stretch, faults = 3, 2
        ours = ft_greedy_spanner(graph, stretch, faults)
        peel = peeling_union_spanner(graph, stretch, faults)
        sampled = sampling_union_spanner(graph, stretch, faults, rng=0, max_samples=120)
        assert ours.size <= peel.size
        assert ours.size < sampled.size
        assert ours.size < graph.number_of_edges()

    def test_fault_tolerance_costs_edges_but_bounded(self):
        graph = generators.gnm(40, 500, rng=9, connected=True)
        plain = greedy_spanner(graph, 3)
        one_fault = ft_greedy_spanner(graph, 3, 1)
        two_faults = ft_greedy_spanner(graph, 3, 2)
        assert plain.size < one_fault.size <= two_faults.size
        # The f=2 output is nowhere near f times the f=1 output (sublinear growth).
        assert two_faults.size < 2 * one_fault.size

    def test_non_ft_spanner_breaks_under_faults(self):
        graph = generators.gnm(30, 250, rng=10, connected=True)
        plain = greedy_spanner(graph, 3)
        report = is_ft_spanner(graph, plain.spanner, 3, 1, method="exhaustive")
        assert not report.ok
        faulted_stretch = stretch_of(
            repro.VERTEX_FAULTS.apply(graph, report.violating_fault_set).materialize(),
            repro.VERTEX_FAULTS.apply(plain.spanner, report.violating_fault_set).materialize(),
        )
        assert faulted_stretch > 3


class TestLowerBoundEndToEnd:
    def test_blowup_forces_every_edge_and_greedy_keeps_them(self):
        instance = bdpw_lower_bound_instance(2, 3)
        result = ft_greedy_spanner(instance.graph, 3, 2)
        assert result.size == instance.edges
        report = is_ft_spanner(instance.graph, result.spanner, 3, 2,
                               method="sampled", samples=30, rng=0)
        assert report.ok

    def test_instance_size_matches_theorem1_shape(self):
        # The instance edge count sits within a constant factor of the
        # Theorem 1 expression evaluated at its own parameters.
        for faults in (2, 4):
            instance = bdpw_lower_bound_instance(faults, 3)
            bound = theorem1_bound(instance.nodes, faults, 3)
            assert instance.edges <= bound
            assert instance.edges >= bound / 40  # loose constant, shape only
