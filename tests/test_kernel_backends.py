"""Kernel-registry tests: loop ≡ numpy byte identity, registry contract, CSR views.

The array backend's whole contract is that it is *behaviourally invisible*:
every kernel returns byte-identical values to the pure-Python loop kernels —
distances, witness paths, settle/discovery orders, early exits — under any
combination of fault masks, budgets, and weights.  These tests drive that
contract property-style, then pin the registry surface (names, errors, auto
gating, env override), the zero-copy CSR view lifecycle, the batched mask
matrix, and the end-to-end consumers (engine, verify, adversarial, BuildSpec,
CLI) on both backends.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.build.spec import BuildError, BuildSpec
from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.paths.registry import (
    _UNAVAILABLE,
    AUTO_NODE_THRESHOLD,
    KERNEL_ENV_VAR,
    KernelBackend,
    describe_kernel_backends,
    get_kernels,
    kernel_backend_names,
)
from repro.utils.rng import RandomSource

HAS_NUMPY = "numpy" in kernel_backend_names()
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _random_graph(n, extra_edges, seed, weighted):
    rng = RandomSource(seed)
    graph = Graph()
    for i in range(n):
        graph.add_node(i)
    for i in range(1, n):  # random spanning tree keeps most pairs reachable
        j = rng.randint(0, i - 1)
        graph.add_edge(i, j, rng.uniform(0.5, 4.0) if weighted else 1.0)
    for _ in range(extra_edges):
        u, v = rng.randint(0, n - 1), rng.randint(0, n - 1)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.uniform(0.5, 4.0) if weighted else 1.0)
    return graph


def _random_masks(csr, rng, fraction=0.2):
    """A random (vertex_mask, edge_mask) pair, either possibly None."""
    vertex_mask = edge_mask = None
    if rng.random() < 0.8:
        nodes = [i for i in range(csr.num_nodes) if rng.random() < fraction]
        vertex_mask = bytearray(csr.num_nodes)
        for i in nodes:
            vertex_mask[i] = 1
    if rng.random() < 0.8:
        edge_mask = bytearray(csr.num_edges)
        for e in range(csr.num_edges):
            if rng.random() < fraction:
                edge_mask[e] = 1
    return vertex_mask, edge_mask


# --------------------------------------------------------------------------
# Byte identity of the six kernels
# --------------------------------------------------------------------------

@needs_numpy
class TestKernelEquivalence:
    @SETTINGS
    @given(n=st.integers(2, 26), extra=st.integers(0, 40),
           seed=st.integers(0, 10_000), weighted=st.booleans())
    def test_all_kernels_byte_identical(self, n, extra, seed, weighted):
        graph = _random_graph(n, extra, seed, weighted)
        csr = csr_snapshot(graph)
        loop = get_kernels("loop")
        npk = get_kernels("numpy")
        rng = RandomSource(seed + 1)
        vm, em = _random_masks(csr, rng)
        source = rng.randint(0, n - 1)
        target = rng.randint(0, n - 1)
        budget = rng.choice([-1.0, 0.0, 1.5, 3.0, 10.0, math.inf])
        targets = [rng.randint(0, n - 1) for _ in range(rng.randint(0, 5))]
        if targets and rng.random() < 0.5:
            targets.append(targets[0])  # duplicates fill independently
        max_hops = rng.choice([None, 0, 1, 2, 5])

        assert (loop.bounded_dijkstra_csr(csr, source, target, budget, vm, em)
                == npk.bounded_dijkstra_csr(csr, source, target, budget, vm, em))
        assert (loop.bounded_dijkstra_path_csr(csr, source, target, budget, vm, em)
                == npk.bounded_dijkstra_path_csr(csr, source, target, budget, vm, em))
        cutoff = None if math.isinf(budget) else budget
        assert (loop.sssp_dijkstra_csr(csr, source, cutoff, vm, em)
                == npk.sssp_dijkstra_csr(csr, source, cutoff, vm, em))
        assert (loop.multi_target_dijkstra_csr(csr, source, targets, vm, em)
                == npk.multi_target_dijkstra_csr(csr, source, targets, vm, em))
        assert (loop.bfs_distances_csr(csr, source, max_hops, vm, em)
                == npk.bfs_distances_csr(csr, source, max_hops, vm, em))
        assert (loop.bounded_bfs_csr(csr, source, target, max_hops, vm, em)
                == npk.bounded_bfs_csr(csr, source, target, max_hops, vm, em))

    @SETTINGS
    @given(n=st.integers(3, 20), extra=st.integers(0, 30),
           seed=st.integers(0, 10_000), groups=st.integers(1, 5),
           vertex_model=st.booleans())
    def test_multi_source_matches_per_group(self, n, extra, seed, groups,
                                            vertex_model):
        import numpy as np

        graph = _random_graph(n, extra, seed, weighted=True)
        csr = csr_snapshot(graph)
        loop = get_kernels("loop")
        npk = get_kernels("numpy")
        rng = RandomSource(seed + 2)
        sources = [rng.randint(0, n - 1) for _ in range(groups)]
        width = csr.num_nodes if vertex_model else csr.num_edges
        matrix = np.zeros((groups, width), dtype=np.uint8)
        for g in range(groups):
            for i in range(width):
                if rng.random() < 0.15:
                    matrix[g, i] = 1
        vms, ems = (matrix, None) if vertex_model else (None, matrix)
        target_lists = [[rng.randint(0, n - 1) for _ in range(rng.randint(0, 3))]
                        for _ in range(groups)]

        fused = npk.multi_source_sssp(csr, sources, vms, ems)
        for g, source in enumerate(sources):
            row = bytearray(matrix[g].tobytes())
            vm, em = (row, None) if vertex_model else (None, row)
            dist, _ = loop.sssp_dijkstra_csr(csr, source, None, vm, em)
            assert fused[g] == dist

        fused_mt = npk.multi_source_multi_target(csr, sources, target_lists,
                                                 vms, ems)
        for g, source in enumerate(sources):
            row = bytearray(matrix[g].tobytes())
            vm, em = (row, None) if vertex_model else (None, row)
            assert fused_mt[g] == loop.multi_target_dijkstra_csr(
                csr, source, target_lists[g], vm, em)

    def test_kernels_identical_after_incremental_append(self):
        graph = _random_graph(18, 20, 7, weighted=True)
        csr = csr_snapshot(graph)
        loop = get_kernels("loop")
        npk = get_kernels("numpy")
        rng = RandomSource(11)
        for _ in range(80):  # grow through the overflow + compaction cycle
            u, v = rng.randint(0, 18 - 1), rng.randint(0, 18 - 1)
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v, rng.uniform(0.5, 3.0))
        csr = csr_snapshot(graph)
        for source in range(0, 18, 3):
            assert (loop.sssp_dijkstra_csr(csr, source)
                    == npk.sssp_dijkstra_csr(csr, source))
            assert (loop.bfs_distances_csr(csr, source)
                    == npk.bfs_distances_csr(csr, source))


# --------------------------------------------------------------------------
# Registry contract
# --------------------------------------------------------------------------

class TestRegistry:
    def test_loop_and_auto_always_registered(self):
        names = kernel_backend_names()
        assert "loop" in names and "auto" in names

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="loop"):
            get_kernels("bogus")

    def test_unavailable_name_raises_runtime_error(self):
        _UNAVAILABLE["fake-backend"] = "left the building"
        try:
            with pytest.raises(RuntimeError, match="left the building"):
                get_kernels("fake-backend")
        finally:
            del _UNAVAILABLE["fake-backend"]

    def test_backend_instance_passes_through(self):
        backend = get_kernels("loop")
        assert get_kernels(backend) is backend

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "loop")
        assert get_kernels(None).name == "loop"
        monkeypatch.setenv(KERNEL_ENV_VAR, "")
        assert get_kernels(None).name == "auto"
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert get_kernels(None).name == "auto"

    def test_describe_covers_loop(self):
        rows = {row["name"]: row for row in describe_kernel_backends()}
        assert rows["loop"]["available"] is True
        assert rows["auto"]["available"] is True

    def test_loop_resolve_is_identity(self):
        csr = csr_snapshot(_random_graph(5, 2, 0, False))
        loop = get_kernels("loop")
        assert loop.resolve(csr) is loop

    @needs_numpy
    def test_auto_gates_on_node_count(self):
        class FakeCSR:
            num_nodes = AUTO_NODE_THRESHOLD

        auto = get_kernels("auto")
        assert auto.resolve(FakeCSR()).name == "numpy"
        FakeCSR.num_nodes = AUTO_NODE_THRESHOLD - 1
        assert auto.resolve(FakeCSR()).name == "loop"

    def test_auto_dispatch_without_resolve(self):
        # Consumers that call the auto backend's kernels directly still get
        # the size gate, applied per call.
        graph = _random_graph(8, 6, 3, True)
        csr = csr_snapshot(graph)
        auto = get_kernels("auto")
        loop = get_kernels("loop")
        assert (auto.sssp_dijkstra_csr(csr, 0)
                == loop.sssp_dijkstra_csr(csr, 0))


# --------------------------------------------------------------------------
# BuildSpec integration
# --------------------------------------------------------------------------

class TestBuildSpecKernel:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(BuildError, match="kernel"):
            BuildSpec("greedy", kernel="bogus")

    def test_non_string_kernel_rejected(self):
        with pytest.raises(BuildError, match="kernel"):
            BuildSpec("greedy", kernel=get_kernels("loop"))

    def test_kernel_round_trips_through_json(self):
        spec = BuildSpec("ft-greedy", max_faults=1, kernel="loop")
        assert spec.to_json()["kernel"] == "loop"
        assert BuildSpec.from_json(spec.to_json()) == spec
        assert "kernel=loop" in spec.summary()

    def test_default_kernel_is_unset(self):
        spec = BuildSpec("greedy")
        assert spec.kernel is None
        assert "kernel" not in spec.summary()


# --------------------------------------------------------------------------
# Zero-copy CSR views
# --------------------------------------------------------------------------

@needs_numpy
class TestCSRViews:
    def test_views_are_zero_copy_and_cached(self):
        csr = csr_snapshot(_random_graph(10, 8, 1, True))
        indptr, indices, weights, edge_ids = csr.as_ndarrays()
        again = csr.as_ndarrays()
        assert again[0] is indptr and again[1] is indices
        assert list(indptr) == list(csr.indptr)
        # Zero copy: an in-place write to the source array shows in the view.
        old = csr.weights[0]
        csr.weights[0] = 99.5
        assert weights[0] == 99.5
        csr.weights[0] = old

    def test_compact_preserves_indptr_view_identity(self):
        graph = _random_graph(12, 6, 2, True)
        csr = csr_snapshot(graph)
        indptr_before = csr.as_ndarrays()[0]
        indices_before = csr.as_ndarrays()[1]
        rng = RandomSource(5)
        appended = 0
        for _ in range(200):
            u, v = rng.randint(0, 12 - 1), rng.randint(0, 12 - 1)
            if u == v or (min(u, v), max(u, v)) in csr.edge_index:
                continue
            csr.append_edge(u, v, rng.uniform(0.5, 2.0))
            appended += 1
        assert appended > 0 and csr._extra_count > 0
        indptr_after, indices_after, _, _ = csr.as_ndarrays()  # compacts
        assert csr._extra_count == 0
        assert indptr_after is indptr_before  # rewritten in place
        assert indices_after is not indices_before  # data arrays replaced
        loop = get_kernels("loop")
        npk = get_kernels("numpy")
        assert loop.sssp_dijkstra_csr(csr, 0) == npk.sssp_dijkstra_csr(csr, 0)

    def test_reverse_arcs_pairs_opposite_arcs(self):
        csr = csr_snapshot(_random_graph(9, 10, 4, False))
        _, indices, _, edge_ids = csr.as_ndarrays()
        rev = csr.reverse_arcs()
        assert csr.reverse_arcs() is rev  # cached
        for t in range(len(indices)):
            assert rev[rev[t]] == t
            assert edge_ids[rev[t]] == edge_ids[t]

    def test_views_never_survive_pickling(self):
        import pickle

        csr = csr_snapshot(_random_graph(6, 4, 8, True))
        csr.as_ndarrays()
        clone = pickle.loads(pickle.dumps(csr))
        assert clone._nd_views == {}
        assert list(clone.indptr) == list(csr.indptr)


# --------------------------------------------------------------------------
# MaskMatrix
# --------------------------------------------------------------------------

@needs_numpy
class TestMaskMatrix:
    def test_rows_match_fault_model_and_clear_between_plans(self):
        from repro.engine.batch import MaskMatrix
        from repro.faults.models import get_fault_model

        graph = _random_graph(10, 10, 3, False)
        csr = csr_snapshot(graph)
        model = get_fault_model("vertex")
        matrix = MaskMatrix(csr, model)
        vms, ems = matrix.apply([(0, 1), (2,), ()])
        assert ems is None and vms.shape == (3, csr.num_nodes)
        assert vms[0, 0] == 1 and vms[0, 1] == 1 and vms[1, 2] == 1
        assert int(vms[2].sum()) == 0
        # Second plan: the previous cells are cleared, capacity is reused.
        backing = matrix._matrix
        vms, _ = matrix.apply([(5,)])
        assert matrix._matrix is backing
        assert vms.shape[0] == 1
        assert int(vms[0].sum()) == 1 and vms[0, 5] == 1

    def test_edge_model_masks_edge_axis(self):
        from repro.engine.batch import MaskMatrix
        from repro.faults.models import get_fault_model

        graph = _random_graph(8, 6, 9, False)
        csr = csr_snapshot(graph)
        model = get_fault_model("edge")
        matrix = MaskMatrix(csr, model)
        edge = next(iter(csr.edge_index))
        u, v = csr.node_of[edge[0]], csr.node_of[edge[1]]
        vms, ems = matrix.apply([((u, v),)])
        assert vms is None and ems.shape == (1, csr.num_edges)
        assert int(ems[0].sum()) == 1


# --------------------------------------------------------------------------
# End-to-end consumers on both backends
# --------------------------------------------------------------------------

@needs_numpy
class TestConsumersByteIdentical:
    @pytest.fixture(scope="class")
    def served(self):
        from repro.build import BuildSession

        graph = generators.gnm(26, 78, rng=3, connected=True)
        spec = BuildSpec("ft-greedy", stretch=3.0, max_faults=1)
        session = BuildSession(graph, spec)
        return graph, session.snapshot()

    def _workload(self, snapshot):
        from repro.engine.workload import zipf_workload

        return zipf_workload(snapshot.spanner, 300, max_faults=1,
                             fault_pool=6, fault_model="vertex", rng=0)

    def test_engine_answers_and_stats_identical(self, served):
        from repro.engine.engine import QueryEngine
        from repro.engine.workload import split_batches

        _, snapshot = served
        queries = self._workload(snapshot)
        answers, stats = {}, {}
        for name in ("loop", "numpy"):
            engine = QueryEngine(snapshot, cache_size=64, kernel=name)
            out = []
            for batch in split_batches(queries, 32):
                out.extend(engine.distances_batch(batch))
            answers[name] = out
            stats[name] = engine.stats()
        assert answers["loop"] == answers["numpy"]
        fused = stats["numpy"].pop("fused_sweeps")
        stats["loop"].pop("fused_sweeps")
        for s in stats.values():  # backend identity and wall clock may differ
            for key in ("kernel", "busy_seconds", "queries_per_second"):
                s.pop(key)
        assert stats["loop"] == stats["numpy"]
        assert fused > 0  # the batched plan actually took the fused path

    def test_stretch_audit_identical(self, served):
        from repro.engine.engine import QueryEngine

        _, snapshot = served
        loop_engine = QueryEngine(snapshot, cache_size=0, kernel="loop")
        np_engine = QueryEngine(snapshot, cache_size=0, kernel="numpy")
        nodes = list(snapshot.spanner.nodes())[:6]
        for s in nodes:
            for t in nodes:
                assert (loop_engine.stretch_audit(s, t, (nodes[0],))
                        == np_engine.stretch_audit(s, t, (nodes[0],)))

    def test_verify_reports_identical(self, served):
        from repro.spanners.verify import is_ft_spanner

        graph, snapshot = served
        reports = [
            is_ft_spanner(graph, snapshot.spanner, 3.0, 1,
                          fault_model="vertex", method="sampled",
                          samples=40, rng=0, kernel=name)
            for name in ("loop", "numpy")
        ]
        assert reports[0] == reports[1]

    def test_adversarial_identical(self, served):
        from repro.faults.adversarial import (
            random_fault_trial,
            stretch_under_faults,
        )

        graph, snapshot = served
        nodes = list(graph.nodes())
        faults = (nodes[1], nodes[4])
        assert (stretch_under_faults(graph, snapshot.spanner, "vertex",
                                     faults, kernel="loop")
                == stretch_under_faults(graph, snapshot.spanner, "vertex",
                                        faults, kernel="numpy"))
        assert (random_fault_trial(graph, snapshot.spanner, "vertex", 1,
                                   25, rng=0, kernel="loop")
                == random_fault_trial(graph, snapshot.spanner, "vertex", 1,
                                      25, rng=0, kernel="numpy"))

    def test_ft_greedy_build_identical(self):
        from repro.build import build

        graph = generators.gnm(22, 55, rng=9, connected=True)
        results = [
            build(graph, BuildSpec("ft-greedy", stretch=3.0, max_faults=1,
                                   kernel=name))
            for name in ("loop", "numpy")
        ]
        assert (sorted(results[0].spanner.edge_keys())
                == sorted(results[1].spanner.edge_keys()))
        assert results[0].witness_fault_sets == results[1].witness_fault_sets

    def test_suite_style_oracle_identical(self):
        from repro.spanners.fault_check import get_oracle

        graph = generators.gnm(16, 40, rng=2, connected=True)
        from repro.faults.models import get_fault_model

        model = get_fault_model("vertex")
        nodes = list(graph.nodes())
        for name in ("branch-and-bound", "exhaustive", "greedy-path-packing"):
            loop_oracle = get_oracle(name, "loop")
            np_oracle = get_oracle(name, "numpy")
            for u, v in [(nodes[0], nodes[5]), (nodes[2], nodes[9])]:
                assert (loop_oracle.find_breaking_fault_set(graph, u, v, 3.0, 1, model)
                        == np_oracle.find_breaking_fault_set(graph, u, v, 3.0, 1, model))


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------

class TestCLIKernel:
    def test_spec_from_args_picks_up_kernel(self):
        from repro.cli import build_parser, spec_from_args

        parser = build_parser()
        args = parser.parse_args(["build", "g.json", "--kernel", "loop"])
        assert spec_from_args(args).kernel == "loop"

    def test_list_prints_kernels(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kernels:" in out
        assert "loop" in out
