"""Observability tests: registry semantics, merges, tracing, and the
serial == parallel counter property.

The load-bearing guarantees:

* the registry is a safe concurrent sink (no lost increments, stable kinds,
  JSON-clean snapshots);
* ``merge_counters`` round-trips labeled flat names, so worker deltas land
  on the equivalent counters of the parent process;
* span traces are valid JSONL that reconstructs the nesting;
* running the same work with ``workers=4`` reports the same counters as the
  serial run — the property that makes parallel telemetry trustworthy.
"""

import gc
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import ResultCache
from repro.engine.engine import QueryEngine
from repro.engine.snapshot import SpannerSnapshot
from repro.graph import generators
from repro.obs.export import (
    METRICS_SCHEMA,
    load_metrics_json,
    metrics_document,
    prometheus_name,
    render_metrics_table,
    render_prometheus,
    write_metrics_json,
)
from repro.obs.metrics import (
    SIZE_BUCKETS,
    MetricsRegistry,
    component_registry,
    get_registry,
    merge_counters,
    merge_snapshots,
)
from repro.obs.trace import SpanTracer, load_spans, span_tree
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.verify import is_ft_spanner


# --------------------------------------------------------------------------
# Registry semantics
# --------------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("a.b")

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("work")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labeled_children_flat_keys(self):
        registry = MetricsRegistry()
        counter = registry.counter("dispatch")
        counter.labels(backend="loop").inc(3)
        counter.labels(backend="numpy").inc()
        # Same label combination -> same child; flat view keys are sorted.
        assert counter.labels(backend="loop") is counter.labels(backend="loop")
        assert registry.counters() == {
            'dispatch{backend="loop"}': 3,
            'dispatch{backend="numpy"}': 1,
        }

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3
        gauge.set(0)
        assert gauge.value == 0

    def test_histogram_buckets_and_snapshot_round_trip_json(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=SIZE_BUCKETS)
        for value in (1, 3, 5000):
            histogram.observe(value)
        snapshot = registry.snapshot()
        # The +Inf bound must encode as a string so strict JSON round-trips.
        assert json.loads(json.dumps(snapshot)) == snapshot
        buckets = dict(tuple(row) for row in snapshot["sizes"]["buckets"])
        assert buckets["+Inf"] == 3
        assert buckets[4096] == 2

    def test_component_registries_fold_into_process_snapshot(self):
        component = component_registry("test-component")
        component.counter("test_component.events").inc(7)
        snapshot = get_registry().snapshot()
        assert snapshot["test_component.events"]["value"] == 7
        # The attachment is weak: once the component dies, it disappears.
        del component
        gc.collect()
        assert "test_component.events" not in get_registry().snapshot()

    def test_reset_zeroes_metrics_and_sources(self):
        registry = MetricsRegistry()
        source = MetricsRegistry()
        registry.attach(source)
        registry.counter("own").inc(2)
        source.counter("theirs").labels(kind="x").inc(4)
        registry.reset()
        assert registry.counters(include_sources=True) == {}

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("races")
        histogram = registry.histogram("laps")

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert histogram.count == 8000

    def test_counters_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("steps")
        counter.inc(2)
        before = registry.counters()
        counter.inc(5)
        registry.counter("fresh").inc(1)
        assert registry.counters_delta(before) == {"steps": 5, "fresh": 1}


# --------------------------------------------------------------------------
# Merges
# --------------------------------------------------------------------------

class TestMerge:
    @given(st.dictionaries(
        st.sampled_from(["a", "b", 'c{k="v"}', 'c{k="w"}']),
        st.integers(min_value=0, max_value=100), max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merge_counters_registry_equals_dict_fold(self, flat):
        """Folding into a registry and into a dict agree on every name."""
        as_dict: dict = {}
        merge_counters(as_dict, flat)
        merge_counters(as_dict, flat)
        registry = MetricsRegistry()
        registry.merge_counters(flat)
        registry.merge_counters(flat)
        assert {name: value for name, value in registry.counters().items()} \
            == {name: value for name, value in as_dict.items() if value}

    def test_merge_counters_labeled_round_trip(self):
        """Flat labeled keys land back on the equivalent labeled children."""
        origin = MetricsRegistry()
        origin.counter("dispatch").labels(backend="loop").inc(3)
        origin.counter("plain").inc(2)
        target = MetricsRegistry()
        merge_counters(target, origin.counters())
        assert target.counters() == origin.counters()

    def test_merge_snapshots_sums_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, values in ((a, (0.001, 0.2)), (b, (0.001,))):
            histogram = registry.histogram("t")
            for value in values:
                histogram.observe(value)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["t"]["count"] == 3
        assert merged["t"]["sum"] == pytest.approx(0.202)


# --------------------------------------------------------------------------
# Tracing
# --------------------------------------------------------------------------

class TestTrace:
    def test_disabled_tracer_hands_out_shared_null_span(self):
        tracer = SpanTracer()
        span = tracer.span("anything", ignored=1)
        assert tracer.span("else") is span
        with span as inner:
            inner.set(dropped=True)  # must be a harmless no-op

    def test_spans_round_trip_and_nest(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        registry = MetricsRegistry()
        work = registry.counter("work")
        tracer = SpanTracer(registry)
        tracer.configure(path)
        try:
            with tracer.span("outer", phase="build") as outer:
                work.inc(2)
                with tracer.span("inner") as inner:
                    work.inc(3)
                    inner.set(items=7)
                outer.set(done=True)
            with tracer.span("second-root"):
                pass
        finally:
            tracer.close()
        spans = load_spans(path)
        assert [span["name"] for span in spans] == [
            "inner", "outer", "second-root"]  # exit order
        by_name = {span["name"]: span for span in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["attrs"] == {"items": 7}
        assert by_name["outer"]["attrs"] == {"phase": "build", "done": True}
        # Counter attribution: the child sees its own movement, the parent
        # sees the inclusive total.
        assert by_name["inner"]["counters"] == {"work": 3}
        assert by_name["outer"]["counters"] == {"work": 5}
        tree = span_tree(spans)
        assert {span["name"] for span in tree[None]} == {"outer",
                                                         "second-root"}
        assert [span["name"]
                for span in tree[by_name["outer"]["span_id"]]] == ["inner"]
        for span in spans:
            assert span["seconds"] >= 0.0

    def test_close_is_idempotent_and_disables(self, tmp_path):
        tracer = SpanTracer(MetricsRegistry())
        tracer.configure(str(tmp_path / "t.jsonl"))
        assert tracer.enabled
        tracer.close()
        tracer.close()
        assert not tracer.enabled


# --------------------------------------------------------------------------
# Export renderings
# --------------------------------------------------------------------------

class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("engine.kernel_calls", "kernel runs").inc(4)
        registry.counter("kernels.dispatch").labels(backend="loop").inc(2)
        registry.histogram("engine.group_kernel_seconds").observe(0.01)
        return registry

    def test_prometheus_rendering(self):
        body = render_prometheus(self._registry().snapshot())
        assert "# TYPE repro_engine_kernel_calls counter" in body
        assert "repro_engine_kernel_calls 4" in body
        assert 'repro_kernels_dispatch{backend="loop"} 2' in body
        assert 'repro_engine_group_kernel_seconds_bucket{le="+Inf"} 1' in body
        assert "repro_engine_group_kernel_seconds_count 1" in body

    def test_prometheus_name(self):
        assert prometheus_name("engine.kernel_calls") \
            == "repro_engine_kernel_calls"

    def test_metrics_json_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        document = write_metrics_json(path, self._registry(),
                                      meta={"command": "test"})
        loaded = load_metrics_json(path)
        assert loaded == document
        assert loaded["schema"] == METRICS_SCHEMA
        assert loaded["meta"] == {"command": "test"}
        assert loaded["metrics"]["engine.kernel_calls"]["value"] == 4

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"not": "metrics"}), encoding="utf-8")
        with pytest.raises(ValueError, match="repro.metrics/v1"):
            load_metrics_json(str(path))

    def test_table_rendering_lists_children(self):
        table = render_metrics_table(self._registry().snapshot())
        rendered = table.to_ascii()
        assert 'kernels.dispatch{backend="loop"}' in rendered
        assert "engine.group_kernel_seconds" in rendered

    def test_metrics_document_accepts_plain_snapshot(self):
        snapshot = self._registry().snapshot()
        assert metrics_document(snapshot)["metrics"] == snapshot


# --------------------------------------------------------------------------
# The serial == parallel counter property
# --------------------------------------------------------------------------

def _counter_delta(fn):
    """Run ``fn`` and return the process-registry counter movement it caused."""
    gc.collect()  # drop dead component registries before the baseline
    registry = get_registry()
    before = registry.counters(include_sources=True)
    result = fn()
    return result, registry.counters_delta(before, include_sources=True)


@pytest.mark.parametrize("seed", [3, 11, 27])
def test_is_ft_spanner_workers4_counters_equal_serial(seed):
    """Verifying a valid spanner with 4 workers moves the same counters.

    Valid spanner -> no early stop -> every chunk is consumed, so the
    captured worker deltas must reproduce the serial counters exactly (the
    speculative-discard caveat only applies to violating runs).
    """
    graph = generators.gnm(16, 48, rng=seed, connected=True, weighted=True)
    spanner = ft_greedy_spanner(graph, 3, 1).spanner

    report_serial, serial = _counter_delta(
        lambda: is_ft_spanner(graph, spanner, 3.0, 1, workers=1))
    report_parallel, parallel = _counter_delta(
        lambda: is_ft_spanner(graph, spanner, 3.0, 1, workers=4,
                              backend="process"))
    assert report_serial.ok and report_parallel.ok
    assert report_parallel.fault_sets_checked == report_serial.fault_sets_checked
    assert parallel == serial


@pytest.mark.parametrize("seed", [5, 19])
def test_stretch_audit_batch_workers4_stats_equal_serial(seed):
    """Pooled audit sweeps report the documented per-call counters.

    The documented exclusions: pooled audits bypass the batch planner and
    the result cache, so ``batches_planned`` / ``groups_executed`` stay 0
    and ``kernel_calls`` is exactly one spanner kernel run per audit
    (serial per-call audits may do fewer via the cache).
    """
    graph = generators.gnm(14, 40, rng=seed, connected=True, weighted=True)
    snapshot = SpannerSnapshot.from_result(ft_greedy_spanner(graph, 3, 1))
    nodes = list(graph.nodes())
    requests = [(s, t, (w,)) for s in nodes[:3] for t in nodes[3:6]
                for w in nodes[6:8]]

    serial_engine = QueryEngine(snapshot)
    serial_audits = serial_engine.stretch_audit_batch(requests)
    pooled_engine = QueryEngine(snapshot, backend="process", workers=4)
    pooled_audits = pooled_engine.stretch_audit_batch(requests)

    assert pooled_audits == serial_audits
    compared = ["queries_served", "audits", "audit_kernel_calls"]
    serial_stats = serial_engine.stats()
    pooled_stats = pooled_engine.stats()
    assert {key: pooled_stats[key] for key in compared} \
        == {key: serial_stats[key] for key in compared}
    assert pooled_stats["kernel_calls"] == len(requests)
    assert serial_stats["kernel_calls"] <= len(requests)
    assert pooled_stats["batches_planned"] == 0
    assert pooled_stats["groups_executed"] == 0


# --------------------------------------------------------------------------
# Cache stats surface
# --------------------------------------------------------------------------

class TestCacheStats:
    def test_untouched_cache_hit_rate_is_zero(self):
        cache = ResultCache(4, metrics=MetricsRegistry())
        assert cache.hit_rate == 0.0

    def test_stats_expose_evictions_and_invalidations(self):
        cache = ResultCache(4, metrics=MetricsRegistry())
        stats = cache.stats()
        assert stats["evictions"] == 0
        assert stats["invalidations"] == 0
        assert stats["hit_rate"] == 0.0
