"""Tests for the shortest-path primitives, cross-checked against networkx."""

import math

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.convert import to_networkx
from repro.graph.views import graph_minus
from repro.paths.apsp import all_pairs_distances, all_pairs_hop_distances, average_distance, diameter
from repro.paths.bfs import bfs_distances, bfs_path, eccentricity, hop_distance
from repro.paths.dijkstra import (
    bidirectional_distance,
    bounded_distance,
    bounded_path,
    dijkstra_distances,
    dijkstra_tree,
    shortest_path,
    shortest_path_distance,
)


class TestDijkstra:
    def test_distances_on_weighted_path(self, weighted_path):
        distances = dijkstra_distances(weighted_path, 0)
        assert distances == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0, 4: 10.0}

    def test_missing_source_raises(self, weighted_path):
        with pytest.raises(ValueError):
            dijkstra_distances(weighted_path, 99)

    def test_cutoff_prunes(self, weighted_path):
        distances = dijkstra_distances(weighted_path, 0, cutoff=3.0)
        assert set(distances) == {0, 1, 2}

    def test_unreachable_omitted(self):
        graph = Graph(edges=[(0, 1)])
        graph.add_node(2)
        assert 2 not in dijkstra_distances(graph, 0)

    def test_tree_parents(self, weighted_path):
        distances, parents = dijkstra_tree(weighted_path, 0)
        assert parents[0] is None
        assert parents[3] == 2
        assert distances[3] == 6.0

    def test_shortest_path_reconstruction(self, square_with_diagonal):
        distance, path = shortest_path(square_with_diagonal, 1, 3)
        assert distance == 2.0
        assert path in ([1, 0, 3], [1, 2, 3])

    def test_shortest_path_prefers_light_diagonal(self):
        graph = Graph(edges=[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
        distance, path = shortest_path(graph, 0, 2)
        assert distance == 1.5
        assert path == [0, 2]

    def test_shortest_path_disconnected(self):
        graph = Graph(edges=[(0, 1)])
        graph.add_node(2)
        distance, path = shortest_path(graph, 0, 2)
        assert distance == math.inf and path == []

    def test_shortest_path_same_node(self, triangle):
        assert shortest_path(triangle, 1, 1) == (0.0, [1])

    def test_shortest_path_distance_matches_networkx(self, small_weighted_random):
        nx_graph = to_networkx(small_weighted_random)
        for source in list(small_weighted_random.nodes())[:5]:
            expected = nx.single_source_dijkstra_path_length(nx_graph, source)
            ours = dijkstra_distances(small_weighted_random, source)
            assert set(ours) == set(expected)
            for node, value in expected.items():
                assert ours[node] == pytest.approx(value)


class TestBoundedQueries:
    def test_bounded_distance_within_budget(self, weighted_path):
        assert bounded_distance(weighted_path, 0, 2, budget=5.0) == 3.0

    def test_bounded_distance_exceeds_budget(self, weighted_path):
        assert bounded_distance(weighted_path, 0, 4, budget=5.0) == math.inf

    def test_bounded_distance_exact_budget(self, weighted_path):
        assert bounded_distance(weighted_path, 0, 2, budget=3.0) == 3.0

    def test_bounded_distance_same_node(self, weighted_path):
        assert bounded_distance(weighted_path, 2, 2, budget=0.0) == 0.0

    def test_bounded_distance_missing_nodes(self, weighted_path):
        assert bounded_distance(weighted_path, 0, 99, budget=10.0) == math.inf

    def test_bounded_distance_on_view(self, square_with_diagonal):
        view = graph_minus(square_with_diagonal, nodes=[0])
        assert bounded_distance(view, 1, 3, budget=5.0) == 2.0

    def test_bounded_path_returns_witness(self, square_with_diagonal):
        distance, path = bounded_path(square_with_diagonal, 1, 3, budget=5.0)
        assert distance == 2.0
        assert path[0] == 1 and path[-1] == 3
        assert len(path) == 3

    def test_bounded_path_budget_exceeded(self, weighted_path):
        distance, path = bounded_path(weighted_path, 0, 4, budget=2.0)
        assert distance == math.inf and path == []

    def test_bidirectional_matches_unidirectional(self, small_weighted_random):
        nodes = list(small_weighted_random.nodes())
        for source in nodes[:4]:
            for target in nodes[-4:]:
                expected = shortest_path_distance(small_weighted_random, source, target)
                actual = bidirectional_distance(small_weighted_random, source, target)
                assert actual == pytest.approx(expected)

    def test_bidirectional_budget(self, weighted_path):
        assert bidirectional_distance(weighted_path, 0, 4, budget=5.0) == math.inf
        assert bidirectional_distance(weighted_path, 0, 2, budget=5.0) == pytest.approx(3.0)

    def test_bidirectional_trivial_cases(self, weighted_path):
        assert bidirectional_distance(weighted_path, 1, 1) == 0.0
        assert bidirectional_distance(weighted_path, 0, 99) == math.inf


class TestBFS:
    def test_bfs_distances(self, square_with_diagonal):
        distances = bfs_distances(square_with_diagonal, 0)
        assert distances == {0: 0, 1: 1, 3: 1, 2: 1}

    def test_bfs_distances_max_hops(self):
        path = generators.path_graph(6)
        distances = bfs_distances(path, 0, max_hops=2)
        assert set(distances) == {0, 1, 2}

    def test_bfs_missing_source(self, triangle):
        with pytest.raises(ValueError):
            bfs_distances(triangle, 9)

    def test_hop_distance(self):
        path = generators.path_graph(5)
        assert hop_distance(path, 0, 4) == 4
        assert hop_distance(path, 0, 4, max_hops=3) == math.inf
        assert hop_distance(path, 2, 2) == 0.0

    def test_hop_distance_ignores_weights(self, weighted_path):
        assert hop_distance(weighted_path, 0, 4) == 4

    def test_bfs_path(self):
        path = generators.path_graph(5)
        distance, nodes = bfs_path(path, 0, 3)
        assert distance == 3
        assert nodes == [0, 1, 2, 3]

    def test_bfs_path_unreachable(self):
        graph = Graph(edges=[(0, 1)])
        graph.add_node(5)
        assert bfs_path(graph, 0, 5) == (math.inf, [])

    def test_eccentricity(self):
        path = generators.path_graph(5)
        assert eccentricity(path, 0) == 4
        assert eccentricity(path, 2) == 2
        assert eccentricity(Graph(nodes=[0]), 0) == 0.0


class TestAllPairs:
    def test_all_pairs_matches_single_source(self, small_weighted_random):
        table = all_pairs_distances(small_weighted_random)
        for source in small_weighted_random.nodes():
            assert table[source] == dijkstra_distances(small_weighted_random, source)

    def test_all_pairs_hop_distances(self, square_with_diagonal):
        table = all_pairs_hop_distances(square_with_diagonal)
        assert table[0][2] == 1.0
        assert table[1][3] == 2.0

    def test_diameter(self):
        path = generators.path_graph(6)
        assert diameter(path, unweighted=True) == 5.0

    def test_diameter_weighted(self, weighted_path):
        assert diameter(weighted_path) == 10.0

    def test_diameter_trivial(self):
        assert diameter(Graph(nodes=[0])) == 0.0

    def test_average_distance(self, triangle):
        assert average_distance(triangle) == pytest.approx(1.0)
        assert average_distance(Graph(nodes=[0])) == 0.0
