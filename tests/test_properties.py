"""Property-based tests (hypothesis) for core invariants.

These exercise the library on arbitrary random inputs rather than hand-picked
instances: graph algebra invariants, shortest-path metric properties, greedy
spanner guarantees for arbitrary stretch/weights, fault-check oracle
soundness, and Lemma 3 invariants.  Sizes are deliberately small so hypothesis
can explore many cases quickly.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.models import get_fault_model
from repro.graph.core import Graph, edge_key
from repro.graph.girth import enumerate_short_cycles, girth
from repro.graph.views import graph_minus
from repro.paths.dijkstra import bounded_distance, dijkstra_distances, shortest_path
from repro.spanners.blocking import extract_blocking_set, is_blocking_set
from repro.spanners.fault_check import BranchAndBoundOracle
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_spanner, stretch_of
from repro.utils.rng import RandomSource

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

@st.composite
def small_graphs(draw, max_nodes=10, weighted=False, connected_bias=True):
    """Random simple graphs with up to ``max_nodes`` nodes."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = RandomSource(seed)
    graph = Graph(nodes=range(n))
    if connected_bias:
        order = list(range(n))
        rng.shuffle(order)
        for index in range(1, n):
            anchor = order[rng.randint(0, index - 1)]
            weight = rng.uniform(1.0, 5.0) if weighted else 1.0
            graph.add_edge(order[index], anchor, weight)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.bernoulli(density):
                weight = rng.uniform(1.0, 5.0) if weighted else 1.0
                graph.add_edge(u, v, weight)
    return graph


# --------------------------------------------------------------------------
# Graph invariants
# --------------------------------------------------------------------------

@SETTINGS
@given(small_graphs())
def test_handshake_lemma(graph):
    assert sum(graph.degree(node) for node in graph.nodes()) == 2 * graph.number_of_edges()


@SETTINGS
@given(small_graphs())
def test_copy_round_trip(graph):
    assert graph.copy().same_structure(graph)


@SETTINGS
@given(small_graphs(), st.integers(min_value=0, max_value=9))
def test_node_removal_view_matches_materialised_subgraph(graph, index):
    nodes = list(graph.nodes())
    victim = nodes[index % len(nodes)]
    view = graph_minus(graph, nodes=[victim])
    materialised = graph.subgraph([node for node in nodes if node != victim])
    assert view.number_of_edges() == materialised.number_of_edges()
    assert set(view.nodes()) == set(materialised.nodes())


@SETTINGS
@given(small_graphs())
def test_girth_never_below_three(graph):
    value = girth(graph)
    assert value >= 3


@SETTINGS
@given(small_graphs(max_nodes=8))
def test_short_cycle_enumeration_consistent_with_girth(graph):
    g = girth(graph, cutoff=6)
    cycles = enumerate_short_cycles(graph, 6)
    if g <= 6:
        assert any(len(cycle) == g for cycle in cycles)
        assert min(len(cycle) for cycle in cycles) == g
    else:
        assert cycles == []


# --------------------------------------------------------------------------
# Shortest-path metric properties
# --------------------------------------------------------------------------

@SETTINGS
@given(small_graphs(weighted=True))
def test_dijkstra_triangle_inequality(graph):
    nodes = list(graph.nodes())
    source = nodes[0]
    distances = dijkstra_distances(graph, source)
    for u, v, w in graph.edges():
        if u in distances and v in distances:
            assert distances[v] <= distances[u] + w + 1e-9
            assert distances[u] <= distances[v] + w + 1e-9


@SETTINGS
@given(small_graphs(weighted=True))
def test_shortest_path_is_consistent_with_distance(graph):
    nodes = list(graph.nodes())
    source, target = nodes[0], nodes[-1]
    distance, path = shortest_path(graph, source, target)
    if distance == math.inf:
        assert path == []
        return
    assert path[0] == source and path[-1] == target
    total = sum(graph.weight(path[i], path[i + 1]) for i in range(len(path) - 1))
    assert total == distance or abs(total - distance) < 1e-9


@SETTINGS
@given(small_graphs(weighted=True), st.floats(min_value=0.5, max_value=10.0))
def test_bounded_distance_agrees_with_dijkstra(graph, budget):
    nodes = list(graph.nodes())
    source, target = nodes[0], nodes[-1]
    exact = dijkstra_distances(graph, source).get(target, math.inf)
    bounded = bounded_distance(graph, source, target, budget)
    if exact <= budget:
        assert bounded == exact or abs(bounded - exact) < 1e-9
    else:
        assert bounded == math.inf


# --------------------------------------------------------------------------
# Spanner guarantees
# --------------------------------------------------------------------------

@SETTINGS
@given(small_graphs(weighted=True), st.sampled_from([1.5, 2.0, 3.0, 5.0]))
def test_greedy_spanner_respects_stretch(graph, stretch):
    result = greedy_spanner(graph, stretch)
    assert result.spanner.is_subgraph_of(graph)
    assert stretch_of(graph, result.spanner) <= stretch * (1 + 1e-9)


@SETTINGS
@given(small_graphs(weighted=False), st.sampled_from([3.0, 5.0]))
def test_greedy_spanner_girth_guarantee(graph, stretch):
    result = greedy_spanner(graph, stretch)
    bound = int(stretch) + 1
    assert girth(result.spanner, cutoff=bound) > bound


@SETTINGS
@given(small_graphs(max_nodes=8, weighted=True), st.integers(min_value=0, max_value=2))
def test_ft_greedy_is_plain_spanner_and_subgraph(graph, faults):
    result = ft_greedy_spanner(graph, 3, faults)
    assert result.spanner.is_subgraph_of(graph)
    assert is_spanner(graph, result.spanner, 3)


@SETTINGS
@given(small_graphs(max_nodes=7), st.sampled_from(["vertex", "edge"]))
def test_ft_greedy_witnesses_are_genuine(graph, fault_model):
    result = ft_greedy_spanner(graph, 3, 1, fault_model=fault_model)
    model = get_fault_model(fault_model)
    # Replay every witness against the *final* spanner minus the witnessed edge:
    # the witness was valid at insertion time; here we just re-check its shape.
    for (u, v), witness in result.witness_fault_sets.items():
        assert len(witness) <= 1
        if fault_model == "vertex":
            assert u not in witness and v not in witness
        else:
            for element in witness:
                assert element == edge_key(*element)


@SETTINGS
@given(small_graphs(max_nodes=8), st.integers(min_value=1, max_value=2))
def test_lemma3_blocking_set_invariants(graph, faults):
    result = ft_greedy_spanner(graph, 3, faults)
    blocking = extract_blocking_set(result)
    assert blocking.size <= faults * max(result.size, 0)
    assert is_blocking_set(result.spanner, blocking)


# --------------------------------------------------------------------------
# Fault-check oracle soundness
# --------------------------------------------------------------------------

@SETTINGS
@given(small_graphs(max_nodes=8), st.integers(min_value=0, max_value=2),
       st.sampled_from(["vertex", "edge"]))
def test_branch_and_bound_witnesses_are_sound(graph, faults, fault_model):
    oracle = BranchAndBoundOracle()
    model = get_fault_model(fault_model)
    nodes = list(graph.nodes())
    source, target = nodes[0], nodes[-1]
    if source == target:
        return
    budget = 3.0
    witness = oracle.find_breaking_fault_set(graph, source, target, budget, faults, model)
    if witness is None:
        return
    assert len(witness) <= faults
    view = model.apply(graph, witness)
    assert bounded_distance(view, source, target, budget) > budget
