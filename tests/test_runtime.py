"""Tests for the sharded execution runtime (backends, planner, merges).

The load-bearing property: everything routed through
:class:`ProcessPoolBackend` must be **bit-identical** to the serial
reference — same verdicts, same worst stretches, same witness fault sets,
same counters — for both fault models.
"""

import math
import pickle

import pytest

from repro.faults.adversarial import (
    random_fault_trial,
    stretch_between_csr,
    stretch_under_faults,
    worst_case_fault_set,
)
from repro.faults.models import get_fault_model
from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.runtime import (
    ChunkArgmax,
    ChunkVerdict,
    ProcessPoolBackend,
    SerialBackend,
    chunk_size_for,
    get_backend,
    iter_chunks,
    merge_argmax,
    merge_verdicts,
    plan_ranges,
    split_sequence,
)
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner, stretch_of


def _double(context, chunk):
    """Module-level chunk task (must be picklable by reference)."""
    return [context * item for item in chunk]


def _boom(context, chunk):
    raise RuntimeError("worker exploded")


# --------------------------------------------------------------------------
# Backends
# --------------------------------------------------------------------------

class TestBackends:
    def test_get_backend_resolution(self):
        assert isinstance(get_backend(None, 1), SerialBackend)
        assert isinstance(get_backend("auto", 1), SerialBackend)
        assert isinstance(get_backend(None, 3), ProcessPoolBackend)
        assert get_backend(None, 3).workers == 3
        assert isinstance(get_backend("serial", 8), SerialBackend)
        assert isinstance(get_backend("process", 1), ProcessPoolBackend)
        backend = SerialBackend()
        assert get_backend(backend, 4) is backend

    def test_get_backend_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            get_backend("threads", 2)
        with pytest.raises(ValueError):
            get_backend(None, 0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)

    def test_serial_map_is_ordered_and_lazy(self):
        backend = SerialBackend()
        seen = []

        def tracking(context, chunk):
            seen.append(chunk)
            return chunk

        iterator = backend.imap(tracking, [[1], [2], [3]], context=None)
        assert next(iterator) == [1]
        assert seen == [[1]]  # nothing past the consumed chunk ran
        iterator.close()
        assert seen == [[1]]

    def test_process_pool_matches_serial(self):
        chunks = [[1, 2], [3], [4, 5, 6]]
        serial = SerialBackend().map(_double, chunks, context=10)
        pooled = ProcessPoolBackend(2).map(_double, chunks, context=10)
        assert pooled == serial == [[10, 20], [30], [40, 50, 60]]

    def test_process_pool_propagates_worker_errors(self):
        with pytest.raises(RuntimeError, match="worker exploded"):
            ProcessPoolBackend(2).map(_boom, [[1]], context=None)

    def test_process_pool_early_close_cancels(self):
        backend = ProcessPoolBackend(2)
        iterator = backend.imap(_double, ([i] for i in range(100)), context=1)
        assert next(iterator) == [0]
        iterator.close()  # must terminate the pool without hanging

    def test_csr_snapshot_pickles(self):
        graph = generators.gnm(15, 40, rng=3, connected=True, weighted=True)
        csr = csr_snapshot(graph)
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.num_nodes == csr.num_nodes
        assert clone.num_edges == csr.num_edges
        assert clone.index_of == csr.index_of
        assert list(clone.weights) == list(csr.weights)


# --------------------------------------------------------------------------
# Shard planner
# --------------------------------------------------------------------------

class TestShardPlanner:
    def test_chunk_size_balances_over_workers(self):
        # 4 workers x 4 chunks each over 1600 items -> 100 per chunk.
        assert chunk_size_for(1600, 4) == 100
        assert chunk_size_for(10, 4, min_chunk=8) == 8
        assert chunk_size_for(0, 4) == 1
        with pytest.raises(ValueError):
            chunk_size_for(10, 0)

    def test_plan_ranges_cover_exactly(self):
        ranges = plan_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert plan_ranges(0, 3) == []

    def test_iter_chunks_is_lazy_and_order_preserving(self):
        def generator():
            yield from range(7)

        chunks = iter_chunks(generator(), 3)
        assert next(chunks) == [0, 1, 2]
        assert list(chunks) == [[3, 4, 5], [6]]

    def test_split_sequence_concatenates_back(self):
        items = list(range(23))
        chunks = split_sequence(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) >= 4  # several chunks per worker


# --------------------------------------------------------------------------
# Deterministic merges
# --------------------------------------------------------------------------

class TestMerges:
    def test_merge_verdicts_stops_at_first_violating_chunk(self):
        consumed = []

        def outcomes():
            for verdict in [
                ChunkVerdict(checked=5, worst=1.5),
                ChunkVerdict(checked=2, worst=2.5, witness=frozenset({1}),
                             witness_value=2.5),
                ChunkVerdict(checked=5, worst=9.9, witness=frozenset({2}),
                             witness_value=9.9),  # must never be consumed
            ]:
                consumed.append(verdict.checked)
                yield verdict

        merged = merge_verdicts(outcomes())
        assert merged.witness == frozenset({1})
        assert merged.checked == 7  # the serial prefix only
        assert merged.worst == 2.5
        assert consumed == [5, 2]

    def test_merge_verdicts_clean_run_totals(self):
        merged = merge_verdicts(iter([ChunkVerdict(checked=4, worst=1.2),
                                      ChunkVerdict(checked=4, worst=1.8)]))
        assert not merged.violated
        assert merged.checked == 8 and merged.worst == 1.8

    def test_merge_argmax_keeps_first_maximum(self):
        # Equal values resolve to the earlier chunk, like the serial >.
        merged = merge_argmax(iter([
            ChunkArgmax(checked=3, best="a", best_value=2.0),
            ChunkArgmax(checked=3, best="b", best_value=2.0),
            ChunkArgmax(checked=3, best="c", best_value=3.0),
        ]))
        assert merged.best == "c" and merged.best_value == 3.0
        merged = merge_argmax(iter([
            ChunkArgmax(checked=3, best="a", best_value=2.0),
            ChunkArgmax(checked=3, best="b", best_value=2.0),
        ]))
        assert merged.best == "a"

    def test_merge_argmax_stops_on_stopped_chunk(self):
        def outcomes():
            yield ChunkArgmax(checked=3, best="a", best_value=2.0)
            yield ChunkArgmax(checked=1, best="hit", best_value=math.inf,
                              stopped=True)
            raise AssertionError("consumed past the stop")

        merged = merge_argmax(outcomes())
        assert merged.best == "hit" and merged.stopped
        assert merged.checked == 4


# --------------------------------------------------------------------------
# Parallel verification == serial verification (the tentpole property)
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def verification_case():
    graph = generators.gnm(16, 52, rng=11, connected=True, weighted=True)
    ft = ft_greedy_spanner(graph, 3, 1, fault_model="vertex").spanner
    plain = greedy_spanner(graph, 3).spanner
    return graph, ft, plain


def _report_tuple(report):
    return (report.ok, report.worst_stretch, report.fault_sets_checked,
            report.exhaustive, report.violating_fault_set)


class TestParallelVerification:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("which", ["ft", "plain"])
    def test_exhaustive_is_bit_identical(self, verification_case, fault_model,
                                         which):
        graph, ft, plain = verification_case
        spanner = ft if which == "ft" else plain
        serial = is_ft_spanner(graph, spanner, 3, 2, fault_model,
                               method="exhaustive")
        pooled = is_ft_spanner(graph, spanner, 3, 2, fault_model,
                               method="exhaustive", workers=2)
        assert _report_tuple(pooled) == _report_tuple(serial)

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_sampled_is_bit_identical(self, verification_case, fault_model):
        graph, ft, _ = verification_case
        serial = is_ft_spanner(graph, ft, 3, 1, fault_model, method="sampled",
                               samples=30, rng=5)
        pooled = is_ft_spanner(graph, ft, 3, 1, fault_model, method="sampled",
                               samples=30, rng=5, workers=2)
        assert _report_tuple(pooled) == _report_tuple(serial)

    def test_violation_witness_matches_serial_first_hit(self, verification_case):
        graph, _, plain = verification_case
        serial = is_ft_spanner(graph, plain, 3, 2, "vertex",
                               method="exhaustive")
        pooled = is_ft_spanner(graph, plain, 3, 2, "vertex",
                               method="exhaustive", workers=3)
        assert not serial.ok and not pooled.ok
        assert pooled.violating_fault_set == serial.violating_fault_set
        assert pooled.fault_sets_checked == serial.fault_sets_checked

    def test_explicit_backend_objects_are_honoured(self, verification_case):
        graph, ft, _ = verification_case
        serial = is_ft_spanner(graph, ft, 3, 1, "vertex", method="exhaustive",
                               backend=SerialBackend())
        pooled = is_ft_spanner(graph, ft, 3, 1, "vertex", method="exhaustive",
                               backend=ProcessPoolBackend(2))
        assert _report_tuple(pooled) == _report_tuple(serial)

    def test_stretch_of_parallel_sweep(self, verification_case):
        graph, ft, plain = verification_case
        for sub in (ft, plain):
            assert stretch_of(graph, sub, workers=2) == stretch_of(graph, sub)
        nodes = list(graph.nodes())
        pairs = [(nodes[0], nodes[5]), (nodes[2], nodes[9]),
                 (nodes[0], nodes[3])]
        assert (stretch_of(graph, ft, pairs=pairs, workers=2)
                == stretch_of(graph, ft, pairs=pairs))

    def test_stretch_between_csr_matches_view_reference(self, verification_case):
        graph, ft, _ = verification_case
        model = get_fault_model("vertex")
        nodes = list(graph.nodes())
        faults = [nodes[3], nodes[7]]
        value = stretch_between_csr(csr_snapshot(graph), csr_snapshot(ft),
                                    model, faults)
        reference = stretch_under_faults(model.apply(graph, faults),
                                         model.apply(ft, faults), model, [])
        assert value == pytest.approx(reference)


class TestParallelAdversarial:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_worst_case_is_bit_identical(self, verification_case, fault_model):
        graph, ft, plain = verification_case
        for spanner in (ft, plain):
            serial = worst_case_fault_set(graph, spanner, fault_model, 1,
                                          method="exhaustive")
            pooled = worst_case_fault_set(graph, spanner, fault_model, 1,
                                          method="exhaustive", workers=2)
            assert pooled == serial

    def test_sampled_search_is_bit_identical(self, verification_case):
        graph, _, plain = verification_case
        serial = worst_case_fault_set(graph, plain, "vertex", 2,
                                      method="sampled", samples=25, rng=9)
        pooled = worst_case_fault_set(graph, plain, "vertex", 2,
                                      method="sampled", samples=25, rng=9,
                                      workers=2)
        assert pooled == serial

    def test_stop_stretch_early_cancel_matches_serial(self, verification_case):
        graph, _, plain = verification_case
        serial = worst_case_fault_set(graph, plain, "vertex", 2,
                                      method="exhaustive", stop_stretch=3.0)
        pooled = worst_case_fault_set(graph, plain, "vertex", 2,
                                      method="exhaustive", stop_stretch=3.0,
                                      workers=2)
        assert pooled == serial
        # The refutation really is one: it exceeds the threshold.
        assert serial[1] > 3.0

    def test_random_trials_concatenate_in_order(self, verification_case):
        graph, ft, _ = verification_case
        serial = random_fault_trial(graph, ft, "vertex", 2, 18, rng=4)
        pooled = random_fault_trial(graph, ft, "vertex", 2, 18, rng=4,
                                    workers=2)
        assert pooled == serial


class TestExperimentWorkers:
    def test_registry_forwards_workers_to_supporting_drivers(self):
        from repro.experiments.registry import run_experiment

        serial = run_experiment("E9", scale="quick", rng=0)
        pooled = run_experiment("E9", scale="quick", rng=0, workers=2)
        assert pooled.rows == serial.rows

    def test_registry_ignores_workers_for_plain_drivers(self):
        from repro.experiments.registry import run_experiment

        # E5 has no workers parameter; the setting must be silently dropped.
        serial = run_experiment("E5", scale="quick", rng=0)
        pooled = run_experiment("E5", scale="quick", rng=0, workers=2)
        assert pooled.rows == serial.rows
