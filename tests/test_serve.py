"""Tests for the serving subsystem (:mod:`repro.serve`).

Layer by layer, matching the subsystem's import discipline:

* the wire layer parses/serializes HTTP and WebSocket frames from literal
  bytes (no sockets, no engine);
* the protocol layer's verb registry and dispatch run against a *fake*
  core, proving transport and engine stay separable — backed by a
  subprocess check that importing the transport loads neither the engine
  nor numpy;
* the coalescing window merges concurrent submits into single runner
  calls with positional answer slices, and degenerates cleanly at
  ``window_seconds=0``;
* the daemon itself is exercised end-to-end over real sockets (background
  event-loop thread): routing, admission control (429 saturation, 503
  drain), graceful drain finishing in-flight work, WebSocket sessions,
  ``/health`` and ``/metrics``;
* the acceptance anchor: with coalescing *on*, concurrent clients get
  answers byte-identical to a directly-queried reference engine, across a
  mid-session ``/v1/update``.
"""

import asyncio
import contextlib
import http.client
import json
import math
import os
import subprocess
import sys
import threading

import pytest

from repro.dynamic.updates import EdgeDelete, EdgeInsert, update_to_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import DaemonClient, DaemonError
from repro.serve.coalesce import CoalescingWindow
from repro.serve.daemon import WS_PATH, ServingDaemon
from repro.serve.protocol import (
    VERBS,
    RequestError,
    describe_verbs,
    dispatch,
    dispatch_sync,
    from_wire_distance,
    get_verb,
    parse_faults,
    parse_queries,
    parse_query,
    register_verb,
    verb_for_path,
    wire_distance,
)
from repro.serve.wire import (
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    WireError,
    encode_frame,
    read_frame,
    read_frame_sync,
    read_http_request,
    response_bytes,
    websocket_accept_key,
)

VERB_NAMES = ("connectivity", "distance", "distances_batch",
              "stretch_audit", "update")


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------

class FakeCore:
    """Engine-free protocol core with arithmetic answers.

    ``distance(s, t, F) = |s - t| + |F|``; negative endpoints are
    unreachable.  Deterministic, instant, and import-free — exactly what
    the protocol layer's duck-typed core contract promises tests.
    """

    fault_model = "vertex"

    def __init__(self, *, delay: float = 0.0, writable: bool = False):
        self.delay = delay
        self.writable = writable
        self.calls = []
        self.applied = []
        self.window = None

    @staticmethod
    def _answer(query):
        source, target, faults = query
        if source < 0 or target < 0:
            return math.inf
        return float(abs(source - target) + len(faults))

    async def distances(self, queries):
        self.calls.append(list(queries))
        if self.delay:
            await asyncio.sleep(self.delay)
        return [self._answer(query) for query in queries]

    async def audit(self, source, target, faults):
        raise RequestError("this fake kept no original graph", status=409)

    async def apply_updates(self, ops):
        if not self.writable:
            raise RequestError("read-only snapshot", status=409)
        self.applied.extend(ops)
        return {"applied": len(ops), "spanner_changed": 0,
                "journal_offset": len(self.applied), "outcomes": []}

    def describe(self):
        return {"writable": self.writable, "fake": True}


class ExplodingCore(FakeCore):
    async def distances(self, queries):
        raise RuntimeError("kernel exploded")


@contextlib.contextmanager
def run_daemon(core, **kwargs):
    """A daemon serving ``core`` on an ephemeral port, loop in a thread."""
    daemon = ServingDaemon(core, port=0, **kwargs)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run(install_signals=False)),
        daemon=True)
    thread.start()
    host, port = daemon.wait_until_started()
    try:
        yield daemon, host, port
    finally:
        daemon.request_drain()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon loop failed to drain"


def feed_reader(blob: bytes) -> asyncio.StreamReader:
    # Must run inside a live event loop (StreamReader binds to one).
    reader = asyncio.StreamReader()
    reader.feed_data(blob)
    reader.feed_eof()
    return reader


def read_request_bytes(blob: bytes, **kwargs):
    async def scenario():
        return await read_http_request(feed_reader(blob), **kwargs)

    return asyncio.run(scenario())


def read_frame_bytes(blob: bytes):
    async def scenario():
        return await read_frame(feed_reader(blob))

    return asyncio.run(scenario())


class FakeSocket:
    """Just enough socket for :func:`read_frame_sync`: recv from a buffer."""

    def __init__(self, blob: bytes):
        self._blob = blob

    def recv(self, count: int) -> bytes:
        chunk, self._blob = self._blob[:count], self._blob[count:]
        return chunk


# --------------------------------------------------------------------------
# Wire layer
# --------------------------------------------------------------------------

class TestHttpWire:
    def _read(self, blob: bytes):
        return read_request_bytes(blob)

    def test_parses_request_line_headers_and_body(self):
        body = b'{"source": 0, "target": 5}'
        blob = (b"POST /v1/distance HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        request = self._read(blob)
        assert request.method == "POST"
        assert request.path == "/v1/distance"
        assert request.header("content-type") == "application/json"
        assert request.header("Content-Type") == "application/json"
        assert request.body == body
        assert request.keep_alive
        assert not request.wants_websocket

    def test_query_string_is_dropped_and_connection_close_honoured(self):
        request = self._read(b"GET /health?verbose=1 HTTP/1.1\r\n"
                             b"Connection: close\r\n\r\n")
        assert request.path == "/health"
        assert not request.keep_alive

    def test_websocket_upgrade_detection(self):
        request = self._read(b"GET /v1/ws HTTP/1.1\r\n"
                             b"Upgrade: websocket\r\n"
                             b"Connection: keep-alive, Upgrade\r\n"
                             b"Sec-WebSocket-Key: abc\r\n\r\n")
        assert request.wants_websocket

    def test_clean_eof_is_none_truncated_head_raises(self):
        assert self._read(b"") is None
        with pytest.raises(WireError):
            self._read(b"GET / HTTP/1.1\r\nHost: x")

    def test_rejects_bad_length_oversize_and_chunked(self):
        with pytest.raises(WireError):
            self._read(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        with pytest.raises(WireError):
            read_request_bytes(
                b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
                max_body=8)
        with pytest.raises(WireError):
            self._read(b"POST / HTTP/1.1\r\n"
                       b"Transfer-Encoding: chunked\r\n\r\n")

    def test_malformed_request_and_header_lines_raise(self):
        with pytest.raises(WireError):
            self._read(b"GARBAGE\r\n\r\n")
        with pytest.raises(WireError):
            self._read(b"GET / HTTP/1.1\r\nno-separator-here\r\n\r\n")

    def test_response_bytes_round_trip(self):
        blob = response_bytes(429, b'{"error": "saturated"}',
                              keep_alive=False,
                              extra_headers={"Retry-After": "1"})
        head, _, body = blob.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Content-Length: 22" in head
        assert b"Connection: close" in head
        assert b"Retry-After: 1" in head
        assert body == b'{"error": "saturated"}'


class TestWebSocketWire:
    def test_accept_key_matches_rfc6455_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    @pytest.mark.parametrize("size", [0, 5, 125, 126, 400, 1 << 16])
    @pytest.mark.parametrize("mask", [False, True])
    def test_frame_round_trip_async_and_sync(self, size, mask):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        blob = encode_frame(payload, OP_TEXT, mask=mask)
        opcode, decoded = read_frame_bytes(blob)
        assert (opcode, decoded) == (OP_TEXT, payload)
        opcode, decoded = read_frame_sync(FakeSocket(blob))
        assert (opcode, decoded) == (OP_TEXT, payload)

    def test_fragmented_and_truncated_frames_raise(self):
        blob = bytearray(encode_frame(b"hi", OP_TEXT))
        blob[0] &= 0x7F  # clear FIN
        with pytest.raises(WireError):
            read_frame_sync(FakeSocket(bytes(blob)))
        with pytest.raises(WireError):
            read_frame_bytes(encode_frame(b"hello")[:3])

    def test_control_opcodes_survive(self):
        opcode, payload = read_frame_sync(
            FakeSocket(encode_frame(b"bye", OP_CLOSE, mask=True)))
        assert (opcode, payload) == (OP_CLOSE, b"bye")


# --------------------------------------------------------------------------
# Protocol layer (fake core; no engine anywhere)
# --------------------------------------------------------------------------

class TestProtocolParsing:
    def test_wire_distance_convention(self):
        assert wire_distance(math.inf) is None
        assert wire_distance(3.5) == 3.5
        assert from_wire_distance(None) == math.inf
        assert from_wire_distance(3.5) == 3.5

    def test_parse_query_dict_and_list_forms(self):
        assert parse_query({"source": 0, "target": 5}, "vertex") == (0, 5, ())
        assert parse_query([0, 5], "vertex") == (0, 5, ())
        assert parse_query([0, 5, [2, 3]], "vertex") == (0, 5, (2, 3))
        # Tuple node labels travel as lists and come back as tuples.
        parsed = parse_query({"source": [0, 1], "target": [2, 0],
                              "faults": [[1, 1]]}, "vertex")
        assert parsed == ((0, 1), (2, 0), ((1, 1),))

    def test_parse_faults_edge_model(self):
        assert parse_faults([[0, 1], [2, 3]], "edge") == ((0, 1), (2, 3))
        with pytest.raises(RequestError):
            parse_faults([0], "edge")  # an edge fault must be a pair
        with pytest.raises(RequestError):
            parse_faults("nope", "vertex")

    def test_parse_query_rejects_bad_shapes(self):
        for payload in ({"source": 0}, [0], [0, 1, 2, 3], "text", None):
            with pytest.raises(RequestError):
                parse_query(payload, "vertex")

    def test_parse_queries_requires_list_envelope(self):
        assert parse_queries({"queries": [[0, 1]]}, "vertex") == [(0, 1, ())]
        with pytest.raises(RequestError):
            parse_queries({"nope": []}, "vertex")
        with pytest.raises(RequestError):
            parse_queries({"queries": "not-a-list"}, "vertex")


class TestVerbRegistry:
    def test_all_verbs_registered_with_paths(self):
        assert tuple(sorted(VERBS)) == VERB_NAMES
        for name in VERB_NAMES:
            verb = get_verb(name)
            assert verb.path == f"/v1/{name}"
            assert verb_for_path(verb.path) is verb
        assert get_verb("update").write
        assert not get_verb("distance").write

    def test_unknown_verb_is_a_404_request_error(self):
        with pytest.raises(RequestError) as excinfo:
            get_verb("teleport")
        assert excinfo.value.status == 404
        assert verb_for_path("/v1/teleport") is None

    def test_describe_verbs_is_the_index_table(self):
        table = describe_verbs()
        assert [entry["verb"] for entry in table] == list(VERB_NAMES)
        assert all(entry["summary"] for entry in table)

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError):
            @register_verb("distance", path="/v1/distance-again", summary="x")
            class _Clash:
                parse = execute = render = staticmethod(lambda *a: None)
        assert "/v1/distance-again" not in [v.path for v in VERBS.values()]


class TestDispatch:
    def _dispatch(self, core, verb, payload):
        return asyncio.run(dispatch(core, verb, payload))

    def test_distance_document(self):
        document = self._dispatch(FakeCore(), "distance",
                                  {"source": 2, "target": 9, "faults": [4]})
        assert document == {"verb": "distance", "source": 2, "target": 9,
                            "faults": [4], "distance": 8.0,
                            "reachable": True}

    def test_unreachable_distance_travels_as_null(self):
        document = self._dispatch(FakeCore(), "distance",
                                  {"source": -1, "target": 3})
        assert document["distance"] is None
        assert document["reachable"] is False

    def test_distances_batch_document(self):
        document = self._dispatch(
            FakeCore(), "distances_batch",
            {"queries": [[0, 4], [1, 1, [2]], [-1, 2]]})
        assert document["verb"] == "distances_batch"
        assert document["count"] == 3
        assert document["distances"] == [4.0, 1.0, None]
        empty = self._dispatch(FakeCore(), "distances_batch", {"queries": []})
        assert empty["count"] == 0 and empty["distances"] == []

    def test_connectivity_document(self):
        document = self._dispatch(FakeCore(), "connectivity",
                                  {"source": 0, "target": -5})
        assert document["connected"] is False

    def test_audit_error_carries_its_status(self):
        with pytest.raises(RequestError) as excinfo:
            self._dispatch(FakeCore(), "stretch_audit",
                           {"source": 0, "target": 1})
        assert excinfo.value.status == 409

    def test_update_parses_journal_ops(self):
        core = FakeCore(writable=True)
        document = self._dispatch(core, "update", {"updates": [
            update_to_json(EdgeInsert(3, 4, weight=2.0)),
            update_to_json(EdgeDelete(0, 1)),
        ]})
        assert document["verb"] == "update"
        assert document["applied"] == 2
        assert [op.kind for op in core.applied] == ["insert", "delete"]
        assert core.applied[0].weight == 2.0

    def test_update_rejections(self):
        with pytest.raises(RequestError) as excinfo:
            self._dispatch(FakeCore(), "update",
                           {"updates": [update_to_json(EdgeDelete(0, 1))]})
        assert excinfo.value.status == 409  # read-only core
        for payload in ({}, {"updates": "x"},
                        {"updates": [{"op": "explode", "u": 0, "v": 1}]}):
            with pytest.raises(RequestError):
                self._dispatch(FakeCore(writable=True), "update", payload)

    def test_dispatch_sync_runs_without_a_loop(self):
        document = dispatch_sync(FakeCore(), "distance",
                                 {"source": 1, "target": 7})
        assert document["distance"] == 6.0


def test_transport_imports_without_engine_or_numpy():
    """The serving transport must load on the stdlib alone."""
    probe = (
        "import sys\n"
        "import repro.serve.wire, repro.serve.protocol\n"
        "import repro.serve.coalesce, repro.serve.daemon, repro.serve.client\n"
        "heavy = [m for m in sys.modules\n"
        "         if m.split('.')[0] == 'numpy'\n"
        "         or m.startswith(('repro.engine', 'repro.paths',\n"
        "                          'repro.spanners', 'repro.build'))]\n"
        "assert not heavy, heavy\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    result = subprocess.run([sys.executable, "-c", probe], env=env,
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stderr


# --------------------------------------------------------------------------
# Coalescing window
# --------------------------------------------------------------------------

class TestCoalescingWindow:
    def _window(self, runner, **kwargs):
        kwargs.setdefault("metrics", MetricsRegistry(name="test"))
        return CoalescingWindow(runner, **kwargs)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            self._window(lambda q: q, window_seconds=-1)
        with pytest.raises(ValueError):
            self._window(lambda q: q, max_batch=0)

    def test_zero_window_flushes_every_submit(self):
        calls = []

        def runner(queries):
            calls.append(list(queries))
            return [float(source) for source, _, _ in queries]

        async def scenario():
            window = self._window(runner, window_seconds=0)
            first = await window.submit([(1, 2, ())])
            second = await window.submit([(3, 4, ())])
            return first, second, window

        first, second, window = asyncio.run(scenario())
        assert (first, second) == ([1.0], [3.0])
        assert len(calls) == 2
        assert window.batches_flushed == 2
        assert window.pending_queries == 0

    def test_concurrent_submits_merge_into_one_batch(self):
        calls = []

        def runner(queries):
            calls.append(list(queries))
            return [float(source * 10 + target)
                    for source, target, _ in queries]

        async def scenario():
            window = self._window(runner, window_seconds=0.01)
            answers = await asyncio.gather(
                window.submit([(1, 2, ())]),
                window.submit([(3, 4, ()), (5, 6, ())]),
                window.submit([(7, 8, ())]))
            return answers, window

        answers, window = asyncio.run(scenario())
        # One merged batch, positional slices back to each submitter.
        assert len(calls) == 1 and len(calls[0]) == 4
        assert answers == [[12.0], [34.0, 56.0], [78.0]]
        assert window.batches_flushed == 1
        assert window.requests_coalesced == 3

    def test_max_batch_flushes_early(self):
        calls = []

        def runner(queries):
            calls.append(list(queries))
            return [0.0] * len(queries)

        async def scenario():
            window = self._window(runner, window_seconds=30.0, max_batch=3)
            await asyncio.gather(window.submit([(0, 1, ()), (1, 2, ())]),
                                 window.submit([(2, 3, ())]))
            return window

        window = asyncio.run(scenario())  # returns => no 30s timer waited on
        assert window.batches_flushed == 1
        assert len(calls[0]) == 3

    def test_runner_exception_reaches_every_parked_request(self):
        def runner(queries):
            raise ValueError("engine on fire")

        async def scenario():
            window = self._window(runner, window_seconds=0.005)
            return await asyncio.gather(window.submit([(0, 1, ())]),
                                        window.submit([(1, 2, ())]),
                                        return_exceptions=True)

        results = asyncio.run(scenario())
        assert all(isinstance(error, ValueError) for error in results)

    def test_short_answer_is_a_runtime_error(self):
        async def scenario():
            window = self._window(lambda queries: [1.0], window_seconds=0)
            return await asyncio.gather(window.submit([(0, 1, ()), (1, 2, ())]),
                                        return_exceptions=True)

        (error,) = asyncio.run(scenario())
        assert isinstance(error, RuntimeError)


# --------------------------------------------------------------------------
# The daemon over real sockets (fake core)
# --------------------------------------------------------------------------

class TestDaemonTransport:
    def test_index_health_and_verb_round_trips(self):
        core = FakeCore(writable=True)
        with run_daemon(core) as (daemon, host, port):
            with DaemonClient(host, port) as client:
                index = client.index()
                paths = {entry["path"] for entry in index["endpoints"]}
                assert {"/v1/distance", "/v1/distances_batch",
                        "/v1/connectivity", "/v1/stretch_audit", "/v1/update",
                        "/health", "/metrics", WS_PATH} <= paths

                assert client.distance(2, 9, [4]) == 8.0
                assert client.distance(-1, 3) == math.inf
                assert client.distances_batch([(0, 4), (1, 1, [2])]) \
                    == [4.0, 1.0]
                assert client.connectivity(0, 4)
                assert not client.connectivity(0, -4)
                report = client.update([EdgeInsert(1, 2)])
                assert report["applied"] == 1

                health = client.health()
                assert health["status"] == "ok"
                assert health["inflight"] == 0
                assert health["engine"] == {"writable": True, "fake": True}

    def test_error_statuses_and_daemon_survival(self):
        with run_daemon(FakeCore()) as (daemon, host, port):
            with DaemonClient(host, port) as client:
                with pytest.raises(DaemonError) as excinfo:
                    client._request("GET", "/v1/nowhere")
                assert excinfo.value.status == 404
                with pytest.raises(DaemonError) as excinfo:
                    client.stretch_audit(0, 1)
                assert excinfo.value.status == 409
                with pytest.raises(DaemonError) as excinfo:
                    client.update([EdgeDelete(0, 1)])
                assert excinfo.value.status == 409

            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("GET", "/v1/distance")  # verbs expect POST
            response = connection.getresponse()
            response.read()
            assert response.status == 405
            connection.request("POST", "/v1/distance", body=b"{broken",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert b"bad JSON" in response.read()
            connection.close()

        with run_daemon(ExplodingCore()) as (daemon, host, port):
            with DaemonClient(host, port) as client:
                with pytest.raises(DaemonError) as excinfo:
                    client.distance(0, 1)
                assert excinfo.value.status == 500
                # A 500 must not kill the daemon.
                assert client.health()["status"] == "ok"

    def test_saturation_answers_429(self):
        core = FakeCore(delay=0.6)
        with run_daemon(core, queue_limit=1) as (daemon, host, port):
            slow_answer = []
            def slow_client():
                with DaemonClient(host, port) as client:
                    slow_answer.append(client.distance(0, 7))
            thread = threading.Thread(target=slow_client)
            thread.start()
            try:
                deadline = 50  # wait until the slow request is admitted
                while daemon._inflight == 0 and deadline:
                    threading.Event().wait(0.01)
                    deadline -= 1
                with DaemonClient(host, port) as client:
                    with pytest.raises(DaemonError) as excinfo:
                        client.distance(1, 2)
                assert excinfo.value.status == 429
            finally:
                thread.join(timeout=10)
            assert slow_answer == [7.0]  # the admitted request still landed

    def test_drain_finishes_inflight_then_rejects_with_503(self):
        core = FakeCore(delay=0.5)
        with run_daemon(core) as (daemon, host, port):
            probe = DaemonClient(host, port)
            assert probe.health()["status"] == "ok"  # open a keep-alive conn
            slow_answer = []
            def slow_client():
                with DaemonClient(host, port) as client:
                    slow_answer.append(client.distance(3, 9))
            thread = threading.Thread(target=slow_client)
            thread.start()
            deadline = 50
            while daemon._inflight == 0 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            daemon.request_drain()
            deadline = 50
            while not daemon._draining and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            # New work on the existing connection is shed with 503...
            with pytest.raises(DaemonError) as excinfo:
                probe.call("distance", {"source": 0, "target": 1})
            assert excinfo.value.status == 503
            # ...while the admitted request runs to completion.
            thread.join(timeout=10)
            assert slow_answer == [6.0]
            probe.close()

    def test_websocket_session_pipelines_and_reports_errors(self):
        with run_daemon(FakeCore()) as (daemon, host, port):
            client = DaemonClient(host, port)
            with client.session() as session:
                assert session.distance(2, 11) == 9.0
                # Pipelined frames: fire three, collect three, match by id.
                sent = {session.send("distance",
                                     {"source": 0, "target": t}): float(t)
                        for t in (3, 5, 8)}
                seen = {}
                for _ in range(len(sent)):
                    response = session.recv()
                    assert response["ok"]
                    seen[response["id"]] = response["result"]["distance"]
                assert seen == sent
                with pytest.raises(DaemonError) as excinfo:
                    session.ask("teleport", {})
                assert excinfo.value.status == 404
            client.close()


# --------------------------------------------------------------------------
# End-to-end over a live engine (the acceptance anchor)
# --------------------------------------------------------------------------

def _live_engine(rng: int = 31):
    from repro.build import BuildSession, BuildSpec
    from repro.dynamic import LiveEngine
    from repro.graph import generators

    graph = generators.gnm(18, 48, rng=rng, connected=True, weighted=True)
    spec = BuildSpec(algorithm="ft-greedy", stretch=3, max_faults=1)
    return LiveEngine(BuildSession(graph, spec).dynamic())


def _query_plan(nodes):
    queries = []
    for i in range(12):
        source = nodes[(5 * i) % len(nodes)]
        target = nodes[(7 * i + 3) % len(nodes)]
        fault = nodes[(11 * i + 1) % len(nodes)]
        faults = [fault] if fault not in (source, target) else []
        if source != target:
            queries.append((source, target, faults))
    return queries


class TestDaemonEndToEnd:
    def _engine_core(self, live, **kwargs):
        from repro.serve.core import EngineCore

        return EngineCore(live, **kwargs)

    def test_cross_client_coalescing_merges_into_one_batch(self):
        live = _live_engine()
        core = self._engine_core(live, window_seconds=0.25)
        with run_daemon(core) as (daemon, host, port):
            barrier = threading.Barrier(2)
            answers = {}
            def client_thread(name, source, target):
                client = DaemonClient(host, port)
                barrier.wait()
                answers[name] = client.distance(source, target)
                client.close()
            threads = [
                threading.Thread(target=client_thread, args=("a", 0, 9)),
                threading.Thread(target=client_thread, args=("b", 1, 7)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15)
        # Two clients, two requests, ONE engine batch: the daemon's point.
        assert core.window.requests_coalesced == 2
        assert core.window.batches_flushed == 1
        assert answers["a"] == live.distance(0, 9)
        assert answers["b"] == live.distance(1, 7)

    def test_concurrent_answers_identical_to_reference_across_update(self):
        served = _live_engine()
        reference = _live_engine()  # same rng => structurally identical
        core = self._engine_core(served, window_seconds=0.05, max_batch=64)
        nodes = sorted(served.snapshot.spanner.nodes())
        plan = _query_plan(nodes)

        def fan_out(host, port, workers=4):
            shards = [plan[i::workers] for i in range(workers)]
            collected = {}
            barrier = threading.Barrier(workers)
            def worker(shard):
                client = DaemonClient(host, port)
                barrier.wait()
                for source, target, faults in shard:
                    collected[(source, target, tuple(faults))] = \
                        client.distance(source, target, faults)
                client.close()
            threads = [threading.Thread(target=worker, args=(shard,))
                       for shard in shards]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            return collected

        with run_daemon(core) as (daemon, host, port):
            client = DaemonClient(host, port)

            phase_one = fan_out(host, port)
            expected = reference.distances_batch(
                [(s, t, tuple(f)) for s, t, f in plan])
            for (s, t, f), want in zip(plan, expected):
                assert phase_one[(s, t, tuple(f))] == want

            # A mid-session update through the daemon's write path, mirrored
            # onto the reference engine.
            edge = next(iter(sorted(served.dynamic.spanner.edge_keys(),
                                    key=repr)))
            report = client.update([EdgeDelete(*edge)])
            assert report["applied"] == 1
            assert report["journal_offset"] == 1
            assert report["outcomes"][0]["op"] == "delete"
            reference.apply(EdgeDelete(*edge))

            phase_two = fan_out(host, port)
            expected = reference.distances_batch(
                [(s, t, tuple(f)) for s, t, f in plan])
            for (s, t, f), want in zip(plan, expected):
                assert phase_two[(s, t, tuple(f))] == want

            health = client.health()
            assert health["engine"]["writable"]
            assert health["engine"]["journal_offset"] == 1
            assert health["engine"]["snapshot"]["algorithm"] \
                == "ft-greedy[dynamic]"

            metrics = client.metrics_text()
            assert "repro_serve_requests" in metrics
            assert "repro_serve_request_seconds" in metrics
            assert "repro_serve_coalesce_batches" in metrics
            assert "repro_serve_coalesce_occupancy" in metrics
            assert "repro_engine_queries_served" in metrics
            client.close()
        assert core.window.requests_coalesced >= 2 * len(plan)
