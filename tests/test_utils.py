"""Tests for the utility layer: RNG, timing, tables, logging."""

import logging
import time

import pytest

from repro.utils.logging import configure_cli_logging, get_logger
from repro.utils.rng import RandomSource, derive_seed, ensure_rng
from repro.utils.tables import Table, format_ascii_table, format_markdown_table, summarize_series
from repro.utils.timing import Timer, best_of, time_call, timed


class TestRandomSource:
    def test_reproducible(self):
        a, b = RandomSource(1), RandomSource(1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert RandomSource(1).random() != RandomSource(2).random()

    def test_spawn_independent_streams(self):
        parent = RandomSource(5)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.seed != child_b.seed
        # Same labels give the same stream regardless of draw order on the parent.
        again = RandomSource(5).spawn("a")
        assert child_a.seed == again.seed

    def test_derive_seed_stable(self):
        assert derive_seed(3, "x", 1) == derive_seed(3, "x", 1)
        assert derive_seed(3, "x", 1) != derive_seed(3, "x", 2)
        assert derive_seed(3) >= 0

    def test_bernoulli_extremes(self):
        rng = RandomSource(0)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False

    def test_subset(self):
        rng = RandomSource(0)
        assert rng.subset(range(10), 1.0) == list(range(10))
        assert rng.subset(range(10), 0.0) == []

    def test_weighted_choice(self):
        rng = RandomSource(0)
        assert rng.weighted_choice(["a"], [1.0]) == "a"
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [1.0])
        with pytest.raises(ValueError):
            rng.weighted_choice([], [])

    def test_distinct_pairs(self):
        rng = RandomSource(0)
        pairs = rng.distinct_pairs(6, 10)
        assert len(pairs) == 10
        assert len(set(pairs)) == 10
        assert all(u < v for u, v in pairs)

    def test_distinct_pairs_exhaustive_branch(self):
        rng = RandomSource(0)
        pairs = rng.distinct_pairs(4, 6)
        assert len(pairs) == 6

    def test_distinct_pairs_too_many(self):
        with pytest.raises(ValueError):
            RandomSource(0).distinct_pairs(3, 5)

    def test_primitive_draws(self):
        rng = RandomSource(0)
        assert 0 <= rng.randint(0, 5) <= 5
        assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0
        assert rng.choice([7]) == 7
        assert rng.getrandbits(8) < 256
        data = [1, 2, 3]
        rng.shuffle(data)
        assert sorted(data) == [1, 2, 3]
        assert len(rng.sample(range(10), 3)) == 3
        rng.gauss()


class TestEnsureRng:
    def test_accepts_none_int_and_source(self):
        assert isinstance(ensure_rng(None), RandomSource)
        assert isinstance(ensure_rng(9), RandomSource)
        source = RandomSource(1)
        assert ensure_rng(source) is source

    def test_accepts_stdlib_random(self):
        import random
        wrapped = ensure_rng(random.Random(3))
        assert isinstance(wrapped, RandomSource)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestTimer:
    def test_measures_elapsed_time(self):
        timer = Timer("t")
        with timer.measure():
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert len(timer.laps) == 1

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises_naming_the_timer(self):
        with pytest.raises(RuntimeError, match="'phase-3'.*never started"):
            Timer("phase-3").stop()

    def test_double_stop_raises_distinct_message(self):
        timer = Timer("lap").start()
        timer.stop()
        with pytest.raises(RuntimeError, match="'lap'.*already stopped"):
            timer.stop()

    def test_timed_decorator_accumulates_per_call(self):
        timer = Timer("calls")

        @timer.timed
        def double(x):
            return x * 2

        assert [double(1), double(2), double(3)] == [2, 4, 6]
        assert len(timer.laps) == 3
        assert timer.elapsed == pytest.approx(sum(timer.laps))
        assert double.timer is timer
        assert double.__name__ == "double"

    def test_timed_decorator_stops_on_exception(self):
        timer = Timer("boom")

        @timer.timed
        def explode():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            explode()
        assert not timer.running
        assert len(timer.laps) == 1

    def test_best_of_returns_minimum_lap(self):
        seconds = best_of(lambda: None, repeats=4)
        assert seconds >= 0.0

    def test_best_of_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)

    def test_accumulates_over_laps(self):
        timer = Timer()
        for _ in range(3):
            timer.start()
            timer.stop()
        assert len(timer.laps) == 3
        assert timer.elapsed == pytest.approx(sum(timer.laps))

    def test_timed_context_manager(self):
        with timed("block") as timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.002
        assert not timer.running

    def test_time_call(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0


class TestTables:
    def _table(self):
        table = Table(columns=["name", "value", "flag"], title="demo")
        table.add_row(name="a", value=1.23456, flag=True)
        table.add_row({"name": "b", "value": 2}, flag=False)
        table.add_row(name="c", value=None, flag=True)
        return table

    def test_add_row_rejects_unknown_columns(self):
        table = Table(columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(b=1)

    def test_column_access(self):
        table = self._table()
        assert table.column("name") == ["a", "b", "c"]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_sort_by(self):
        table = Table(columns=["x"])
        for value in (3, 1, 2):
            table.add_row(x=value)
        assert table.sort_by("x").column("x") == [1, 2, 3]

    def test_ascii_rendering(self):
        text = self._table().to_ascii()
        assert "demo" in text
        assert "name" in text and "1.235" in text
        assert "-" in text  # None renders as dash

    def test_markdown_rendering(self):
        text = self._table().to_markdown()
        assert text.count("|") > 6
        assert "### demo" in text

    def test_csv_rendering(self):
        text = self._table().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "name,value,flag"
        assert len(lines) == 4

    def test_len_and_str(self):
        table = self._table()
        assert len(table) == 3
        assert str(table) == table.to_ascii()

    def test_format_helpers_empty_input(self):
        assert format_ascii_table([], title="t") == "t"
        assert format_markdown_table([]) == ""

    def test_summarize_series(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summarize_series([])["count"] == 0


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("spanners").name == "repro.spanners"
        assert get_logger("repro.graph").name == "repro.graph"

    def test_configure_cli_logging_idempotent(self):
        configure_cli_logging(verbose=True)
        configure_cli_logging(verbose=False)
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.level == logging.INFO
