"""Tests for spanner / FT-spanner verification."""

import math

import pytest

from repro.graph import generators
from repro.graph.core import Graph
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import FTVerificationReport, is_ft_spanner, is_spanner, stretch_of


class TestStretchOf:
    def test_identical_graphs(self, small_random):
        assert stretch_of(small_random, small_random.copy()) == 1.0

    def test_single_missing_edge(self, triangle):
        spanner = triangle.edge_subgraph([(0, 1), (1, 2)])
        assert stretch_of(triangle, spanner) == pytest.approx(2.0)

    def test_disconnection_gives_infinity(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        spanner = graph.edge_subgraph([(0, 1)])
        assert stretch_of(graph, spanner) == math.inf

    def test_weighted_stretch(self):
        graph = Graph(edges=[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        spanner = graph.edge_subgraph([(0, 1), (1, 2)])
        assert stretch_of(graph, spanner) == pytest.approx(2.0)

    def test_restricted_pairs(self, square_with_diagonal):
        spanner = square_with_diagonal.edge_subgraph([(0, 1), (1, 2), (2, 3)])
        assert stretch_of(square_with_diagonal, spanner, pairs=[(0, 1)]) == 1.0
        assert stretch_of(square_with_diagonal, spanner, pairs=[(0, 3)]) == pytest.approx(3.0)

    def test_trivial_graphs(self):
        assert stretch_of(Graph(), Graph()) == 1.0
        assert stretch_of(Graph(nodes=[0]), Graph(nodes=[0])) == 1.0


class TestIsSpanner:
    def test_greedy_output_verifies(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        assert is_spanner(medium_random, result.spanner, 3)

    def test_too_sparse_subgraph_fails(self, medium_random):
        tree_like = greedy_spanner(medium_random, 100).spanner
        assert not is_spanner(medium_random, tree_like, 1.5)

    def test_tolerates_floating_point_noise(self):
        graph = Graph(edges=[(0, 1, 0.1), (1, 2, 0.1), (0, 2, 0.2 / 3 * 3)])
        spanner = graph.edge_subgraph([(0, 1), (1, 2)])
        # stretch is exactly (0.1 + 0.1) / 0.2 = 1 up to floating point noise.
        assert is_spanner(graph, spanner, 1.0)


class TestIsFTSpanner:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            is_ft_spanner(triangle, triangle.copy(), 0.5, 1)
        with pytest.raises(ValueError):
            is_ft_spanner(triangle, triangle.copy(), 3, -1)
        with pytest.raises(ValueError):
            is_ft_spanner(triangle, triangle.copy(), 3, 1, method="bogus")

    def test_trivial_spanner_always_passes(self, small_random):
        report = is_ft_spanner(small_random, small_random.copy(), 3, 2,
                               method="sampled", samples=10, rng=0)
        assert report.ok
        assert report.worst_stretch == 1.0

    def test_ft_greedy_passes_exhaustively(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1)
        report = is_ft_spanner(small_random, result.spanner, 3, 1, method="exhaustive")
        assert report.ok
        assert report.exhaustive
        assert report.violating_fault_set is None
        assert report.fault_sets_checked == 1 + small_random.number_of_nodes()

    def test_non_ft_greedy_fails(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        report = is_ft_spanner(medium_random, result.spanner, 3, 1, method="exhaustive")
        assert not report.ok
        assert report.violating_fault_set is not None
        assert len(report.violating_fault_set) <= 1
        assert report.worst_stretch > 3

    def test_report_is_truthy_protocol(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1)
        report = is_ft_spanner(small_random, result.spanner, 3, 1, method="exhaustive")
        assert bool(report) is True

    def test_edge_fault_verification(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1, fault_model="edge")
        report = is_ft_spanner(small_random, result.spanner, 3, 1,
                               fault_model="edge", method="exhaustive")
        assert report.ok
        assert report.fault_model == "edge"

    def test_auto_switches_to_sampling(self):
        graph = generators.gnm(40, 150, rng=0, connected=True)
        result = ft_greedy_spanner(graph, 3, 2)
        report = is_ft_spanner(graph, result.spanner, 3, 2, method="auto",
                               samples=15, rng=1, exhaustive_limit=100)
        assert not report.exhaustive
        assert report.fault_sets_checked == 15
        assert report.ok

    def test_sampled_check_can_refute(self, medium_random):
        sparse = greedy_spanner(medium_random, 3)
        report = is_ft_spanner(medium_random, sparse.spanner, 3, 2,
                               method="sampled", samples=60, rng=2)
        # With 60 random 2-fault sets against a non-FT spanner on a dense
        # instance, a violation is essentially always found.
        assert not report.ok

    def test_zero_faults_reduces_to_plain_check(self, medium_random):
        result = greedy_spanner(medium_random, 3)
        report = is_ft_spanner(medium_random, result.spanner, 3, 0, method="exhaustive")
        assert report.ok
        assert report.fault_sets_checked == 1

    def test_report_dataclass_fields(self):
        report = FTVerificationReport(
            ok=True, stretch_required=3, worst_stretch=2.5, fault_model="vertex",
            max_faults=1, fault_sets_checked=10, exhaustive=False,
        )
        assert report.notes == ""
        assert bool(report)
